/**
 * @file
 * Class-file parser: the loader half of the wire format.
 *
 * parseClassFile() consumes bytes produced by writeClassFile() and
 * rebuilds the in-memory model, checking magic, version, method
 * delimiters, and structural bounds. This is verification steps 1-2 of
 * the paper's five-step model (class-file structure + global data);
 * bytecode-level checking is the Verifier's job (steps 3-4).
 */

#ifndef NSE_CLASSFILE_PARSER_H
#define NSE_CLASSFILE_PARSER_H

#include <cstdint>
#include <vector>

#include "classfile/classfile.h"

namespace nse
{

/** Parse a serialized class file; fatal()s on malformed input. */
ClassFile parseClassFile(const std::vector<uint8_t> &bytes);

/**
 * Parse only the global data (everything before the first method) and
 * report how many methods follow. Used by the incremental loader, which
 * can verify and prepare a class as soon as its global data arrives.
 */
struct GlobalDataView
{
    ClassFile partial;   ///< class file with empty method bodies
    uint16_t methodCount = 0;
    size_t globalDataEnd = 0;
};
GlobalDataView parseGlobalData(const std::vector<uint8_t> &bytes);

} // namespace nse

#endif // NSE_CLASSFILE_PARSER_H
