#include "classfile/constant_pool.h"

#include "support/error.h"

namespace nse
{

const char *
cpTagName(CpTag tag)
{
    switch (tag) {
      case CpTag::Invalid: return "Invalid";
      case CpTag::Utf8: return "Utf8";
      case CpTag::Integer: return "Integer";
      case CpTag::Float: return "Float";
      case CpTag::Long: return "Long";
      case CpTag::Double: return "Double";
      case CpTag::Class: return "Class";
      case CpTag::String: return "String";
      case CpTag::FieldRef: return "FieldRef";
      case CpTag::MethodRef: return "MethodRef";
      case CpTag::InterfaceMethodRef: return "InterfaceMethodRef";
      case CpTag::NameAndType: return "NameAndType";
    }
    return "Unknown";
}

ConstantPool::ConstantPool()
{
    // Reserved slot 0, as in the JVM.
    entries_.push_back(CpEntry{});
}

uint16_t
ConstantPool::intern(const std::string &key, CpEntry entry)
{
    auto it = internTable_.find(key);
    if (it != internTable_.end())
        return it->second;
    NSE_CHECK(entries_.size() < UINT16_MAX, "constant pool overflow");
    entries_.push_back(std::move(entry));
    auto idx = static_cast<uint16_t>(entries_.size() - 1);
    internTable_.emplace(key, idx);
    return idx;
}

uint16_t
ConstantPool::addUtf8(std::string_view s)
{
    CpEntry e;
    e.tag = CpTag::Utf8;
    e.utf8 = std::string(s);
    return intern(cat("u:", s), std::move(e));
}

uint16_t
ConstantPool::addInteger(int32_t v)
{
    CpEntry e;
    e.tag = CpTag::Integer;
    e.value = v;
    return intern(cat("i:", v), std::move(e));
}

uint16_t
ConstantPool::addFloat(uint32_t bits)
{
    CpEntry e;
    e.tag = CpTag::Float;
    e.value = bits;
    return intern(cat("f:", bits), std::move(e));
}

uint16_t
ConstantPool::addLong(int64_t v)
{
    CpEntry e;
    e.tag = CpTag::Long;
    e.value = v;
    return intern(cat("l:", v), std::move(e));
}

uint16_t
ConstantPool::addDouble(uint64_t bits)
{
    CpEntry e;
    e.tag = CpTag::Double;
    e.value = static_cast<int64_t>(bits);
    return intern(cat("d:", bits), std::move(e));
}

uint16_t
ConstantPool::addString(std::string_view s)
{
    uint16_t utf8 = addUtf8(s);
    CpEntry e;
    e.tag = CpTag::String;
    e.ref1 = utf8;
    return intern(cat("s:", utf8), std::move(e));
}

uint16_t
ConstantPool::addClass(std::string_view name)
{
    uint16_t utf8 = addUtf8(name);
    CpEntry e;
    e.tag = CpTag::Class;
    e.ref1 = utf8;
    return intern(cat("c:", utf8), std::move(e));
}

uint16_t
ConstantPool::addNameAndType(std::string_view name, std::string_view desc)
{
    uint16_t n = addUtf8(name);
    uint16_t d = addUtf8(desc);
    CpEntry e;
    e.tag = CpTag::NameAndType;
    e.ref1 = n;
    e.ref2 = d;
    return intern(cat("nt:", n, ":", d), std::move(e));
}

uint16_t
ConstantPool::addFieldRef(std::string_view cls, std::string_view name,
                          std::string_view desc)
{
    uint16_t c = addClass(cls);
    uint16_t nt = addNameAndType(name, desc);
    CpEntry e;
    e.tag = CpTag::FieldRef;
    e.ref1 = c;
    e.ref2 = nt;
    return intern(cat("fr:", c, ":", nt), std::move(e));
}

uint16_t
ConstantPool::addMethodRef(std::string_view cls, std::string_view name,
                           std::string_view desc)
{
    uint16_t c = addClass(cls);
    uint16_t nt = addNameAndType(name, desc);
    CpEntry e;
    e.tag = CpTag::MethodRef;
    e.ref1 = c;
    e.ref2 = nt;
    return intern(cat("mr:", c, ":", nt), std::move(e));
}

uint16_t
ConstantPool::addInterfaceMethodRef(std::string_view cls,
                                    std::string_view name,
                                    std::string_view desc)
{
    uint16_t c = addClass(cls);
    uint16_t nt = addNameAndType(name, desc);
    CpEntry e;
    e.tag = CpTag::InterfaceMethodRef;
    e.ref1 = c;
    e.ref2 = nt;
    return intern(cat("imr:", c, ":", nt), std::move(e));
}

uint16_t
ConstantPool::appendRaw(CpEntry entry)
{
    NSE_CHECK(entries_.size() < UINT16_MAX, "constant pool overflow");
    entries_.push_back(std::move(entry));
    return static_cast<uint16_t>(entries_.size() - 1);
}

bool
ConstantPool::valid(uint16_t idx) const
{
    return idx > 0 && idx < entries_.size();
}

const CpEntry &
ConstantPool::at(uint16_t idx) const
{
    NSE_ASSERT(valid(idx), "constant pool index out of range: ", idx);
    return entries_[idx];
}

const CpEntry &
ConstantPool::at(uint16_t idx, CpTag expected) const
{
    if (!valid(idx))
        fatal("constant pool index out of range: ", idx);
    const CpEntry &e = entries_[idx];
    if (e.tag != expected)
        fatal("constant pool entry ", idx, " is ", cpTagName(e.tag),
              ", expected ", cpTagName(expected));
    return e;
}

const std::string &
ConstantPool::utf8At(uint16_t idx) const
{
    return at(idx, CpTag::Utf8).utf8;
}

const std::string &
ConstantPool::className(uint16_t class_idx) const
{
    return utf8At(at(class_idx, CpTag::Class).ref1);
}

ConstantPool::MemberRef
ConstantPool::memberRef(uint16_t idx) const
{
    const CpEntry &e = at(idx);
    if (e.tag != CpTag::FieldRef && e.tag != CpTag::MethodRef &&
        e.tag != CpTag::InterfaceMethodRef) {
        fatal("constant pool entry ", idx, " is ", cpTagName(e.tag),
              ", expected a member reference");
    }
    const CpEntry &nt = at(e.ref2, CpTag::NameAndType);
    return MemberRef{className(e.ref1), utf8At(nt.ref1), utf8At(nt.ref2)};
}

size_t
ConstantPool::entryByteSize(const CpEntry &entry)
{
    switch (entry.tag) {
      case CpTag::Invalid:
        return 0;
      case CpTag::Utf8:
        return 1 + 2 + entry.utf8.size();
      case CpTag::Integer:
      case CpTag::Float:
        return 1 + 4;
      case CpTag::Long:
      case CpTag::Double:
        return 1 + 8;
      case CpTag::Class:
      case CpTag::String:
        return 1 + 2;
      case CpTag::FieldRef:
      case CpTag::MethodRef:
      case CpTag::InterfaceMethodRef:
      case CpTag::NameAndType:
        return 1 + 4;
    }
    panic("unreachable tag");
}

} // namespace nse
