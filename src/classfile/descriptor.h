/**
 * @file
 * Method and field descriptor strings and their parsed form.
 *
 * Descriptors follow a JVM-like grammar restricted to the substrate's
 * two value kinds:
 *   I      int
 *   A      reference (object or array)
 *   V      void (return position only)
 * A method descriptor is "(" params ")" return, e.g. "(IAI)V".
 */

#ifndef NSE_CLASSFILE_DESCRIPTOR_H
#define NSE_CLASSFILE_DESCRIPTOR_H

#include <string>
#include <string_view>
#include <vector>

namespace nse
{

/** Value kinds tracked by descriptors, the verifier, and the VM. */
enum class TypeKind : uint8_t
{
    Int,
    Ref,
    Void,
};

/** Parsed method signature. */
struct MethodSig
{
    std::vector<TypeKind> params;
    TypeKind ret = TypeKind::Void;

    /** Number of local slots the arguments occupy (incl. receiver). */
    uint16_t
    argSlots(bool is_static) const
    {
        return static_cast<uint16_t>(params.size() + (is_static ? 0 : 1));
    }
};

/** Parse "(II)V"-style descriptors; fatal()s on malformed input. */
MethodSig parseMethodDescriptor(std::string_view desc);

/** Parse a field descriptor ("I" or "A"); fatal()s on malformed input. */
TypeKind parseFieldDescriptor(std::string_view desc);

/** Render a signature back into descriptor syntax. */
std::string makeMethodDescriptor(const std::vector<TypeKind> &params,
                                 TypeKind ret);

} // namespace nse

#endif // NSE_CLASSFILE_DESCRIPTOR_H
