#include "classfile/classfile.h"

namespace nse
{

namespace
{

// Serialized method layout, kept in sync with writer.cc:
//   access u16 + name u16 + desc u16 + maxLocals u16
//   localDataLen u32 + localData
//   codeLen u32 + code
//   delimiter u32
constexpr size_t kMethodHeaderBytes = 2 + 2 + 2 + 2 + 4 + 4;
constexpr size_t kMethodDelimiterBytes = 4;

} // namespace

size_t
MethodInfo::transferSize() const
{
    return kMethodHeaderBytes + localData.size() + code.size() +
           kMethodDelimiterBytes;
}

int
ClassFile::findMethod(std::string_view name, std::string_view desc) const
{
    for (size_t i = 0; i < methods.size(); ++i) {
        if (methodName(methods[i]) == name &&
            methodDescriptor(methods[i]) == desc) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

int
ClassFile::findMethod(std::string_view name) const
{
    for (size_t i = 0; i < methods.size(); ++i) {
        if (methodName(methods[i]) == name)
            return static_cast<int>(i);
    }
    return -1;
}

int
ClassFile::findField(std::string_view name) const
{
    for (size_t i = 0; i < fields.size(); ++i) {
        if (fieldName(fields[i]) == name)
            return static_cast<int>(i);
    }
    return -1;
}

} // namespace nse
