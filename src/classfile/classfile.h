/**
 * @file
 * In-memory class-file model: the unit of mobile-code transfer.
 *
 * Mirrors the JVM class-file split the paper relies on:
 *  - *global data*: header, constant pool, interfaces, field table,
 *    class-level attributes — everything a class needs before any of
 *    its methods can run;
 *  - *methods*: per-method local data (auxiliary tables: exception,
 *    line-number, debug info) plus bytecode. In the serialized form a
 *    method delimiter follows each method so a non-strict loader knows
 *    when the method has fully arrived (paper §3).
 */

#ifndef NSE_CLASSFILE_CLASSFILE_H
#define NSE_CLASSFILE_CLASSFILE_H

#include <cstdint>
#include <string>
#include <vector>

#include "classfile/constant_pool.h"
#include "classfile/descriptor.h"

namespace nse
{

/** Access / modifier flags for classes, fields and methods. */
enum AccessFlags : uint16_t
{
    kAccPublic = 0x0001,
    kAccPrivate = 0x0002,
    kAccStatic = 0x0008,
    kAccFinal = 0x0010,
    kAccNative = 0x0100,
    kAccAbstract = 0x0400,
};

/** One field declaration (static or instance). */
struct FieldInfo
{
    uint16_t accessFlags = 0;
    uint16_t nameIdx = 0; ///< Utf8 cp index
    uint16_t descIdx = 0; ///< Utf8 cp index ("I" or "A")

    bool isStatic() const { return accessFlags & kAccStatic; }
};

/** One method: metadata, auxiliary local data, and bytecode. */
struct MethodInfo
{
    uint16_t accessFlags = 0;
    uint16_t nameIdx = 0; ///< Utf8 cp index
    uint16_t descIdx = 0; ///< Utf8 cp index, method descriptor
    uint16_t maxLocals = 0;
    /**
     * Auxiliary per-method data transferred alongside the code (the
     * paper's "local data": exception tables, line-number tables,
     * literal tables). Opaque to the VM; counts toward transfer size.
     */
    std::vector<uint8_t> localData;
    /** Encoded bytecode stream. Empty for native methods. */
    std::vector<uint8_t> code;

    bool isStatic() const { return accessFlags & kAccStatic; }
    bool isNative() const { return accessFlags & kAccNative; }

    /** Serialized size: header + local data + code + delimiter. */
    size_t transferSize() const;
};

/** A named class-level attribute blob (SourceFile, debug info, ...). */
struct AttributeInfo
{
    uint16_t nameIdx = 0; ///< Utf8 cp index
    std::vector<uint8_t> data;
};

/** A complete class file. */
struct ClassFile
{
    uint16_t accessFlags = kAccPublic;
    uint16_t thisClassIdx = 0;  ///< Class cp index
    uint16_t superClassIdx = 0; ///< Class cp index, 0 = no superclass
    std::vector<uint16_t> interfaceIdxs; ///< Class cp indices
    ConstantPool cpool;
    std::vector<FieldInfo> fields;
    std::vector<MethodInfo> methods;
    std::vector<AttributeInfo> attributes;

    const std::string &name() const { return cpool.className(thisClassIdx); }

    bool hasSuper() const { return superClassIdx != 0; }
    const std::string &superName() const
    {
        return cpool.className(superClassIdx);
    }

    const std::string &methodName(const MethodInfo &m) const
    {
        return cpool.utf8At(m.nameIdx);
    }
    const std::string &methodDescriptor(const MethodInfo &m) const
    {
        return cpool.utf8At(m.descIdx);
    }
    const std::string &fieldName(const FieldInfo &f) const
    {
        return cpool.utf8At(f.nameIdx);
    }

    /** Index of the method with this name+descriptor, or -1. */
    int findMethod(std::string_view name, std::string_view desc) const;

    /** Index of the first method with this name, or -1. */
    int findMethod(std::string_view name) const;

    /** Index of the field with this name, or -1. */
    int findField(std::string_view name) const;
};

} // namespace nse

#endif // NSE_CLASSFILE_CLASSFILE_H
