/**
 * @file
 * Human-readable listings of bytecode streams, used by the examples and
 * by test diagnostics.
 */

#ifndef NSE_BYTECODE_DISASSEMBLER_H
#define NSE_BYTECODE_DISASSEMBLER_H

#include <string>
#include <vector>

#include "bytecode/instruction.h"

namespace nse
{

/** Render one instruction as "offset: MNEMONIC operand". */
std::string disassemble(const Instruction &inst);

/** Render a whole instruction sequence, one instruction per line. */
std::string disassemble(const std::vector<Instruction> &insts);

/** Decode and render an encoded bytecode stream. */
std::string disassembleCode(const std::vector<uint8_t> &code);

} // namespace nse

#endif // NSE_BYTECODE_DISASSEMBLER_H
