/**
 * @file
 * Decoded instruction representation plus the binary instruction codec.
 *
 * A method's code attribute stores the encoded stream; analyses and the
 * interpreter work on the decoded form. Branch operands are absolute
 * bytecode offsets within the method (the decoder validates that they
 * land on instruction boundaries; see Verifier).
 */

#ifndef NSE_BYTECODE_INSTRUCTION_H
#define NSE_BYTECODE_INSTRUCTION_H

#include <cstdint>
#include <vector>

#include "bytecode/opcode.h"
#include "support/bytebuffer.h"

namespace nse
{

/** One decoded bytecode instruction. */
struct Instruction
{
    Opcode op = Opcode::NOP;
    /** Immediate / local slot / constant-pool index / branch target. */
    int32_t operand = 0;
    /** Byte offset of this instruction within the method's code. */
    uint32_t offset = 0;

    /** Encoded size of this instruction in bytes. */
    size_t size() const { return encodedSize(op); }
};

/** Encode a decoded instruction sequence into a bytecode stream. */
std::vector<uint8_t> encodeCode(const std::vector<Instruction> &insts);

/**
 * Decode a full bytecode stream. Offsets are filled in; operand ranges
 * (locals, constant-pool, branch targets) are validated later by the
 * verifier. fatal()s on truncated or unknown encodings.
 */
std::vector<Instruction> decodeCode(const std::vector<uint8_t> &code);

/** Decode the single instruction starting at `offset`. */
Instruction decodeAt(const std::vector<uint8_t> &code, uint32_t offset);

} // namespace nse

#endif // NSE_BYTECODE_INSTRUCTION_H
