#include "bytecode/code_builder.h"

#include "support/error.h"

namespace nse
{

Cond
negate(Cond c)
{
    switch (c) {
      case Cond::Eq: return Cond::Ne;
      case Cond::Ne: return Cond::Eq;
      case Cond::Lt: return Cond::Ge;
      case Cond::Ge: return Cond::Lt;
      case Cond::Gt: return Cond::Le;
      case Cond::Le: return Cond::Gt;
    }
    panic("unreachable cond");
}

Opcode
icmpOpcode(Cond c)
{
    switch (c) {
      case Cond::Eq: return Opcode::IF_ICMPEQ;
      case Cond::Ne: return Opcode::IF_ICMPNE;
      case Cond::Lt: return Opcode::IF_ICMPLT;
      case Cond::Ge: return Opcode::IF_ICMPGE;
      case Cond::Gt: return Opcode::IF_ICMPGT;
      case Cond::Le: return Opcode::IF_ICMPLE;
    }
    panic("unreachable cond");
}

Opcode
izeroOpcode(Cond c)
{
    switch (c) {
      case Cond::Eq: return Opcode::IFEQ;
      case Cond::Ne: return Opcode::IFNE;
      case Cond::Lt: return Opcode::IFLT;
      case Cond::Ge: return Opcode::IFGE;
      case Cond::Gt: return Opcode::IFGT;
      case Cond::Le: return Opcode::IFLE;
    }
    panic("unreachable cond");
}

CodeBuilder::Label
CodeBuilder::newLabel()
{
    labelTargets_.push_back(kUnbound);
    return static_cast<Label>(labelTargets_.size() - 1);
}

void
CodeBuilder::bind(Label label)
{
    NSE_ASSERT(label < labelTargets_.size(), "unknown label ", label);
    NSE_ASSERT(labelTargets_[label] == kUnbound,
               "label bound twice: ", label);
    labelTargets_[label] = static_cast<uint32_t>(insts_.size());
}

void
CodeBuilder::emit(Opcode op)
{
    NSE_ASSERT(opcodeInfo(op).operand == OperandKind::None,
               opcodeInfo(op).name, " requires an operand");
    insts_.push_back({op, 0, 0});
    branchLabels_.push_back(kUnbound);
}

void
CodeBuilder::emit(Opcode op, int32_t operand)
{
    auto kind = opcodeInfo(op).operand;
    NSE_ASSERT(kind != OperandKind::None && kind != OperandKind::Branch,
               opcodeInfo(op).name, " takes no direct operand here");
    insts_.push_back({op, operand, 0});
    branchLabels_.push_back(kUnbound);
}

void
CodeBuilder::branch(Opcode op, Label target)
{
    NSE_ASSERT(isBranch(op), opcodeInfo(op).name, " is not a branch");
    NSE_ASSERT(target < labelTargets_.size(), "unknown label ", target);
    insts_.push_back({op, 0, 0});
    branchLabels_.push_back(target);
}

void
CodeBuilder::pushInt(int32_t v)
{
    if (v >= INT8_MIN && v <= INT8_MAX)
        emit(Opcode::PUSH_I8, v);
    else
        emit(Opcode::PUSH_I32, v);
}

void
CodeBuilder::iinc(uint16_t slot, int32_t delta)
{
    iload(slot);
    pushInt(delta);
    emit(Opcode::IADD);
    istore(slot);
}

void
CodeBuilder::ifNZ(const Block &then)
{
    Label skip = newLabel();
    branch(Opcode::IFEQ, skip);
    then();
    bind(skip);
}

void
CodeBuilder::ifNZElse(const Block &then, const Block &other)
{
    Label else_lbl = newLabel();
    Label done = newLabel();
    branch(Opcode::IFEQ, else_lbl);
    then();
    branch(Opcode::GOTO, done);
    bind(else_lbl);
    other();
    bind(done);
}

void
CodeBuilder::ifICmp(Cond c, const Block &then)
{
    Label skip = newLabel();
    branch(icmpOpcode(negate(c)), skip);
    then();
    bind(skip);
}

void
CodeBuilder::ifICmpElse(Cond c, const Block &then, const Block &other)
{
    Label else_lbl = newLabel();
    Label done = newLabel();
    branch(icmpOpcode(negate(c)), else_lbl);
    then();
    branch(Opcode::GOTO, done);
    bind(else_lbl);
    other();
    bind(done);
}

void
CodeBuilder::loopWhile(const Block &cond, const Block &body)
{
    Label head = newLabel();
    Label exit = newLabel();
    bind(head);
    cond();
    branch(Opcode::IFEQ, exit);
    body();
    branch(Opcode::GOTO, head);
    bind(exit);
}

void
CodeBuilder::forRange(uint16_t slot, int32_t from, const Block &to,
                      const Block &body)
{
    pushInt(from);
    istore(slot);
    loopWhile(
        [&] {
            iload(slot);
            to();
            // leave (slot < bound) as 0/1 via a small branch diamond
            Label yes = newLabel();
            Label done = newLabel();
            branch(Opcode::IF_ICMPLT, yes);
            pushInt(0);
            branch(Opcode::GOTO, done);
            bind(yes);
            pushInt(1);
            bind(done);
        },
        [&] {
            body();
            iinc(slot, 1);
        });
}

void
CodeBuilder::forRange(uint16_t slot, int32_t from, int32_t to,
                      const Block &body)
{
    forRange(slot, from, [&] { pushInt(to); }, body);
}

std::vector<Instruction>
CodeBuilder::finish()
{
    // First pass: assign byte offsets.
    std::vector<uint32_t> offsets(insts_.size());
    uint32_t pc = 0;
    for (size_t i = 0; i < insts_.size(); ++i) {
        offsets[i] = pc;
        insts_[i].offset = pc;
        pc += static_cast<uint32_t>(insts_[i].size());
    }

    // Second pass: resolve branch labels to absolute offsets. A label
    // bound past the last instruction would fall off the method; the
    // verifier rejects that, so refuse it here with a clear message.
    for (size_t i = 0; i < insts_.size(); ++i) {
        uint32_t label = branchLabels_[i];
        if (label == kUnbound)
            continue;
        uint32_t target_idx = labelTargets_[label];
        if (target_idx == kUnbound)
            fatal("branch to unbound label ", label);
        if (target_idx >= insts_.size())
            fatal("branch label ", label, " bound past method end");
        insts_[i].operand = static_cast<int32_t>(offsets[target_idx]);
    }

    branchLabels_.clear();
    labelTargets_.clear();
    return std::move(insts_);
}

} // namespace nse
