/**
 * @file
 * The bytecode instruction set of the mobile-program substrate.
 *
 * The ISA is a JVM-flavoured stack machine: integer arithmetic,
 * reference-typed object/array operations, class-file constant-pool
 * addressing, and static/virtual invocation. Each opcode carries at most
 * one operand, whose encoding is described by its OperandKind.
 *
 * Per-opcode cycle costs model an interpreter on the paper's 500 MHz
 * Alpha: tens of cycles of dispatch/execute per bytecode, with calls,
 * allocation, and field traffic costing more. Workloads add native-call
 * costs on top, which is how the paper's per-program CPI spread
 * (82..3830) arises.
 */

#ifndef NSE_BYTECODE_OPCODE_H
#define NSE_BYTECODE_OPCODE_H

#include <cstdint>
#include <string_view>

namespace nse
{

/** How an opcode's single operand is encoded in the instruction stream. */
enum class OperandKind : uint8_t
{
    None,   ///< no operand
    ImmI8,  ///< 8-bit signed immediate
    ImmI32, ///< 32-bit signed immediate
    Local,  ///< u16 local-variable slot index
    CpIdx,  ///< u16 constant-pool index
    Branch, ///< u16 absolute bytecode offset within the method
};

/**
 * Opcode list as an X-macro: NSE_OPCODE(mnemonic, operand kind,
 * interpreter cycle cost). Order defines the binary encoding.
 */
#define NSE_OPCODE_LIST(X)                                                   \
    X(NOP,          None,   25)                                              \
    X(PUSH_I8,      ImmI8,  30)                                              \
    X(PUSH_I32,     ImmI32, 32)                                              \
    X(LDC,          CpIdx,  44)                                              \
    X(ACONST_NULL,  None,   30)                                              \
    X(ILOAD,        Local,  34)                                              \
    X(ISTORE,       Local,  34)                                              \
    X(ALOAD,        Local,  34)                                              \
    X(ASTORE,       Local,  34)                                              \
    X(POP,          None,   28)                                              \
    X(DUP,          None,   30)                                              \
    X(DUP_X1,       None,   34)                                              \
    X(SWAP,         None,   32)                                              \
    X(IADD,         None,   33)                                              \
    X(ISUB,         None,   33)                                              \
    X(IMUL,         None,   40)                                              \
    X(IDIV,         None,   72)                                              \
    X(IREM,         None,   74)                                              \
    X(INEG,         None,   31)                                              \
    X(ISHL,         None,   34)                                              \
    X(ISHR,         None,   34)                                              \
    X(IUSHR,        None,   34)                                              \
    X(IAND,         None,   33)                                              \
    X(IOR,          None,   33)                                              \
    X(IXOR,         None,   33)                                              \
    X(IFEQ,         Branch, 42)                                              \
    X(IFNE,         Branch, 42)                                              \
    X(IFLT,         Branch, 42)                                              \
    X(IFGE,         Branch, 42)                                              \
    X(IFGT,         Branch, 42)                                              \
    X(IFLE,         Branch, 42)                                              \
    X(IF_ICMPEQ,    Branch, 46)                                              \
    X(IF_ICMPNE,    Branch, 46)                                              \
    X(IF_ICMPLT,    Branch, 46)                                              \
    X(IF_ICMPGE,    Branch, 46)                                              \
    X(IF_ICMPGT,    Branch, 46)                                              \
    X(IF_ICMPLE,    Branch, 46)                                              \
    X(IF_ACMPEQ,    Branch, 46)                                              \
    X(IF_ACMPNE,    Branch, 46)                                              \
    X(IFNULL,       Branch, 42)                                              \
    X(IFNONNULL,    Branch, 42)                                              \
    X(GOTO,         Branch, 38)                                              \
    X(INVOKESTATIC, CpIdx,  210)                                             \
    X(INVOKEVIRTUAL,CpIdx,  260)                                             \
    X(RETURN,       None,   110)                                             \
    X(IRETURN,      None,   112)                                             \
    X(ARETURN,      None,   112)                                             \
    X(NEW,          CpIdx,  320)                                             \
    X(NEWARRAY,     None,   300)                                             \
    X(ANEWARRAY,    None,   310)                                             \
    X(IALOAD,       None,   52)                                              \
    X(IASTORE,      None,   54)                                              \
    X(AALOAD,       None,   52)                                              \
    X(AASTORE,      None,   56)                                              \
    X(ARRAYLENGTH,  None,   40)                                              \
    X(GETFIELD,     CpIdx,  62)                                              \
    X(PUTFIELD,     CpIdx,  64)                                              \
    X(GETSTATIC,    CpIdx,  58)                                              \
    X(PUTSTATIC,    CpIdx,  60)

/** Binary opcode values; order is the wire encoding. */
enum class Opcode : uint8_t
{
#define NSE_OPCODE_ENUM(name, kind, cost) name,
    NSE_OPCODE_LIST(NSE_OPCODE_ENUM)
#undef NSE_OPCODE_ENUM
};

/** Number of defined opcodes. */
constexpr size_t kNumOpcodes = 0
#define NSE_OPCODE_COUNT(name, kind, cost) +1
    NSE_OPCODE_LIST(NSE_OPCODE_COUNT)
#undef NSE_OPCODE_COUNT
    ;

/** Static per-opcode properties. */
struct OpcodeInfo
{
    std::string_view name;
    OperandKind operand;
    uint32_t cycleCost;
};

/** Look up metadata for an opcode; panics on out-of-range values. */
const OpcodeInfo &opcodeInfo(Opcode op);

/** True when the raw byte encodes a defined opcode. */
bool isValidOpcode(uint8_t raw);

/** Encoded size in bytes of an instruction with this opcode. */
size_t encodedSize(Opcode op);

/** True for conditional branches and GOTO. */
bool isBranch(Opcode op);

/** True for conditional branches (falls through when untaken). */
bool isConditionalBranch(Opcode op);

/** True for RETURN / IRETURN / ARETURN. */
bool isReturn(Opcode op);

/** True for INVOKESTATIC / INVOKEVIRTUAL. */
bool isInvoke(Opcode op);

} // namespace nse

#endif // NSE_BYTECODE_OPCODE_H
