/**
 * @file
 * Structured bytecode authoring API.
 *
 * CodeBuilder is how workloads and tests write methods: it provides raw
 * emission with label patching plus structured control-flow combinators
 * (if/else, while, counted for) so that workload sources read like an
 * AST construction rather than a flat assembly listing.
 *
 * Branch operands are symbolic labels while building; finish() resolves
 * them to absolute byte offsets.
 */

#ifndef NSE_BYTECODE_CODE_BUILDER_H
#define NSE_BYTECODE_CODE_BUILDER_H

#include <cstdint>
#include <functional>
#include <vector>

#include "bytecode/instruction.h"

namespace nse
{

/** Integer comparison conditions for structured branches. */
enum class Cond : uint8_t
{
    Eq,
    Ne,
    Lt,
    Ge,
    Gt,
    Le,
};

/** The condition that is true exactly when `c` is false. */
Cond negate(Cond c);

/** Map a condition onto the two-operand IF_ICMPxx branch opcode. */
Opcode icmpOpcode(Cond c);

/** Map a condition onto the compare-against-zero IFxx branch opcode. */
Opcode izeroOpcode(Cond c);

/**
 * Builds one method's instruction sequence.
 *
 * The emit* methods append instructions; block(...) combinators take
 * callables that emit their bodies. finish() validates that all labels
 * were bound and returns the instruction list with offsets assigned.
 */
class CodeBuilder
{
  public:
    using Label = uint32_t;
    using Block = std::function<void()>;

    CodeBuilder() = default;

    /** Allocate a fresh unbound label. */
    Label newLabel();

    /** Bind a label to the current position. Each label binds once. */
    void bind(Label label);

    /** Append an operand-less instruction. */
    void emit(Opcode op);

    /** Append an instruction with an immediate/local/cp operand. */
    void emit(Opcode op, int32_t operand);

    /** Append a branch whose target is a (possibly unbound) label. */
    void branch(Opcode op, Label target);

    // --- Common shorthands -------------------------------------------

    /** Push an int constant, choosing the smallest encoding. */
    void pushInt(int32_t v);

    void iload(uint16_t slot) { emit(Opcode::ILOAD, slot); }
    void istore(uint16_t slot) { emit(Opcode::ISTORE, slot); }
    void aload(uint16_t slot) { emit(Opcode::ALOAD, slot); }
    void astore(uint16_t slot) { emit(Opcode::ASTORE, slot); }

    /** slot += delta (no stack traffic). */
    void iinc(uint16_t slot, int32_t delta);

    // --- Structured control flow -------------------------------------

    /** Consume top int; run `then` when it is non-zero. */
    void ifNZ(const Block &then);

    /** Consume top int; run `then` when non-zero, else `other`. */
    void ifNZElse(const Block &then, const Block &other);

    /** Consume two ints a,b (pushed in that order); run when a?b holds. */
    void ifICmp(Cond c, const Block &then);

    /** Two-armed variant of ifICmp. */
    void ifICmpElse(Cond c, const Block &then, const Block &other);

    /**
     * while (cond) body. `cond` must leave one int on the stack;
     * the loop exits when it is zero.
     */
    void loopWhile(const Block &cond, const Block &body);

    /**
     * for (slot = from; slot < to_fn(); ++slot) body.
     * `to` emits the bound onto the stack each iteration.
     */
    void forRange(uint16_t slot, int32_t from, const Block &to,
                  const Block &body);

    /** Counted loop with a constant bound. */
    void forRange(uint16_t slot, int32_t from, int32_t to,
                  const Block &body);

    /** Number of instructions emitted so far. */
    size_t instructionCount() const { return insts_.size(); }

    /**
     * Resolve labels to byte offsets and return the finished sequence.
     * fatal()s when a referenced label was never bound.
     */
    std::vector<Instruction> finish();

  private:
    std::vector<Instruction> insts_;
    /** For each instruction, the label it branches to (or kNoLabel). */
    std::vector<uint32_t> branchLabels_;
    /** Instruction index each label is bound to; kUnbound until bound. */
    std::vector<uint32_t> labelTargets_;

    static constexpr uint32_t kUnbound = UINT32_MAX;
};

} // namespace nse

#endif // NSE_BYTECODE_CODE_BUILDER_H
