#include "bytecode/opcode.h"

#include <array>

#include "support/error.h"

namespace nse
{

namespace
{

constexpr std::array<OpcodeInfo, kNumOpcodes> kOpcodeTable = {{
#define NSE_OPCODE_INFO(name, kind, cost) \
    OpcodeInfo{#name, OperandKind::kind, cost},
    NSE_OPCODE_LIST(NSE_OPCODE_INFO)
#undef NSE_OPCODE_INFO
}};

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    auto idx = static_cast<size_t>(op);
    NSE_ASSERT(idx < kNumOpcodes, "opcode out of range: ", idx);
    return kOpcodeTable[idx];
}

bool
isValidOpcode(uint8_t raw)
{
    return raw < kNumOpcodes;
}

size_t
encodedSize(Opcode op)
{
    switch (opcodeInfo(op).operand) {
      case OperandKind::None:
        return 1;
      case OperandKind::ImmI8:
        return 2;
      case OperandKind::ImmI32:
        return 5;
      case OperandKind::Local:
      case OperandKind::CpIdx:
      case OperandKind::Branch:
        return 3;
    }
    panic("unreachable operand kind");
}

bool
isBranch(Opcode op)
{
    return opcodeInfo(op).operand == OperandKind::Branch;
}

bool
isConditionalBranch(Opcode op)
{
    return isBranch(op) && op != Opcode::GOTO;
}

bool
isReturn(Opcode op)
{
    return op == Opcode::RETURN || op == Opcode::IRETURN ||
           op == Opcode::ARETURN;
}

bool
isInvoke(Opcode op)
{
    return op == Opcode::INVOKESTATIC || op == Opcode::INVOKEVIRTUAL;
}

} // namespace nse
