#include "bytecode/instruction.h"

#include "support/error.h"

namespace nse
{

std::vector<uint8_t>
encodeCode(const std::vector<Instruction> &insts)
{
    ByteWriter w;
    for (const auto &inst : insts) {
        w.putU8(static_cast<uint8_t>(inst.op));
        switch (opcodeInfo(inst.op).operand) {
          case OperandKind::None:
            break;
          case OperandKind::ImmI8:
            NSE_ASSERT(inst.operand >= INT8_MIN && inst.operand <= INT8_MAX,
                       "imm8 out of range: ", inst.operand);
            w.putI8(static_cast<int8_t>(inst.operand));
            break;
          case OperandKind::ImmI32:
            w.putI32(inst.operand);
            break;
          case OperandKind::Local:
          case OperandKind::CpIdx:
          case OperandKind::Branch:
            NSE_ASSERT(inst.operand >= 0 && inst.operand <= UINT16_MAX,
                       "u16 operand out of range: ", inst.operand);
            w.putU16(static_cast<uint16_t>(inst.operand));
            break;
        }
    }
    return w.take();
}

std::vector<Instruction>
decodeCode(const std::vector<uint8_t> &code)
{
    std::vector<Instruction> out;
    ByteReader r(code);
    while (!r.atEnd()) {
        Instruction inst;
        inst.offset = static_cast<uint32_t>(r.pos());
        uint8_t raw = r.getU8();
        if (!isValidOpcode(raw))
            fatal("unknown opcode byte ", int{raw}, " at offset ",
                  inst.offset);
        inst.op = static_cast<Opcode>(raw);
        switch (opcodeInfo(inst.op).operand) {
          case OperandKind::None:
            break;
          case OperandKind::ImmI8:
            inst.operand = r.getI8();
            break;
          case OperandKind::ImmI32:
            inst.operand = r.getI32();
            break;
          case OperandKind::Local:
          case OperandKind::CpIdx:
          case OperandKind::Branch:
            inst.operand = r.getU16();
            break;
        }
        out.push_back(inst);
    }
    return out;
}

Instruction
decodeAt(const std::vector<uint8_t> &code, uint32_t offset)
{
    NSE_CHECK(offset < code.size(), "decode offset past end: ", offset);
    ByteReader r(code.data() + offset, code.size() - offset);
    Instruction inst;
    inst.offset = offset;
    uint8_t raw = r.getU8();
    if (!isValidOpcode(raw))
        fatal("unknown opcode byte ", int{raw}, " at offset ", offset);
    inst.op = static_cast<Opcode>(raw);
    switch (opcodeInfo(inst.op).operand) {
      case OperandKind::None:
        break;
      case OperandKind::ImmI8:
        inst.operand = r.getI8();
        break;
      case OperandKind::ImmI32:
        inst.operand = r.getI32();
        break;
      case OperandKind::Local:
      case OperandKind::CpIdx:
      case OperandKind::Branch:
        inst.operand = r.getU16();
        break;
    }
    return inst;
}

} // namespace nse
