#include "bytecode/disassembler.h"

#include <iomanip>
#include <sstream>

namespace nse
{

std::string
disassemble(const Instruction &inst)
{
    const auto &info = opcodeInfo(inst.op);
    std::ostringstream os;
    os << std::setw(5) << inst.offset << ": " << info.name;
    switch (info.operand) {
      case OperandKind::None:
        break;
      case OperandKind::ImmI8:
      case OperandKind::ImmI32:
        os << " " << inst.operand;
        break;
      case OperandKind::Local:
        os << " slot=" << inst.operand;
        break;
      case OperandKind::CpIdx:
        os << " cp#" << inst.operand;
        break;
      case OperandKind::Branch:
        os << " -> " << inst.operand;
        break;
    }
    return os.str();
}

std::string
disassemble(const std::vector<Instruction> &insts)
{
    std::ostringstream os;
    for (const auto &inst : insts)
        os << disassemble(inst) << "\n";
    return os.str();
}

std::string
disassembleCode(const std::vector<uint8_t> &code)
{
    return disassemble(decodeCode(code));
}

} // namespace nse
