#include "transfer/runahead.h"

#include <algorithm>
#include <deque>
#include <set>

#include "analysis/callgraph.h"
#include "restructure/layout.h"
#include "sim/context.h"
#include "support/saturate.h"

namespace nse
{

namespace
{

/** Nodes the speculative call-graph walk may visit per stall. */
constexpr size_t kExpansionBudget = 256;

} // namespace

RunaheadScheduler::RunaheadScheduler(const ExecTrace &trace,
                                     const TransferLayout &layout,
                                     const CallGraph *cg,
                                     RunaheadConfig cfg)
    : trace_(&trace), layout_(&layout), cg_(cg), cfg_(cfg)
{
    mark_.resize(layout.streams.size(), 0);
    predicted_.reserve(cfg.k);
}

void
RunaheadScheduler::onStall(TransferEngine &engine, size_t eventIdx,
                           uint64_t clock, EventSink *obs)
{
    if (cfg_.depth == 0 || cfg_.k == 0)
        return;
    const std::vector<TraceEvent> &evs = trace_->events;
    if (eventIdx >= evs.size())
        return;
    ++stats_.stallsInspected;
    std::fill(mark_.begin(), mark_.end(), 0);
    predicted_.clear();

    // The stalled stream is being handled by the ordinary demand
    // fetch; never promote past it, never defer it.
    const MethodPlacement &blocked = layout_->of(evs[eventIdx].method);
    if (blocked.streamIdx >= 0)
        mark_[static_cast<size_t>(blocked.streamIdx)] = 1;

    auto wantsPromotion = [&](const MethodPlacement &pl) {
        return engine.stream(pl.streamIdx).state == StreamState::Idle &&
               !engine.hasArrived(pl.streamIdx, pl.availOffset);
    };

    // 1. Run ahead in the recorded trace: the next `depth` first
    //    uses, in order. Every stream seen here is protected from
    //    deferral even when it needs no promotion (already active or
    //    already arrived). The RTA bound only gates *promotion*: a
    //    method the analysis proves unreachable must not be fetched
    //    speculatively, but its stream still must not be deferred.
    size_t end = std::min(evs.size(),
                          eventIdx + 1 + static_cast<size_t>(cfg_.depth));
    for (size_t j = eventIdx + 1; j < end; ++j) {
        MethodId m = evs[j].method;
        const MethodPlacement &pl = layout_->of(m);
        if (pl.streamIdx < 0 || mark_[static_cast<size_t>(pl.streamIdx)])
            continue;
        mark_[static_cast<size_t>(pl.streamIdx)] = 1;
        if (cg_ && !cg_->rtaReachable(m))
            continue;
        if (predicted_.size() < cfg_.k && wantsPromotion(pl))
            predicted_.push_back(pl.streamIdx);
    }

    // 2. Not-yet-seen paths: when the trace window maps to fewer than
    //    k streams, expand breadth-first over the RTA call graph from
    //    the blocked method — the methods it may invoke once its bytes
    //    arrive are the plausible next first-uses beyond the window.
    if (predicted_.size() < cfg_.k && cg_ != nullptr) {
        std::deque<MethodId> frontier;
        std::set<MethodId> visited;
        frontier.push_back(evs[eventIdx].method);
        visited.insert(evs[eventIdx].method);
        size_t budget = kExpansionBudget;
        while (!frontier.empty() && predicted_.size() < cfg_.k &&
               budget > 0) {
            --budget;
            MethodId m = frontier.front();
            frontier.pop_front();
            for (const CallSite &site : cg_->node(m).sites) {
                for (MethodId t : site.rtaTargets) {
                    if (!visited.insert(t).second)
                        continue;
                    frontier.push_back(t);
                    const MethodPlacement &pl = layout_->of(t);
                    if (pl.streamIdx < 0 ||
                        mark_[static_cast<size_t>(pl.streamIdx)])
                        continue;
                    if (!wantsPromotion(pl))
                        continue;
                    mark_[static_cast<size_t>(pl.streamIdx)] = 1;
                    predicted_.push_back(pl.streamIdx);
                    if (predicted_.size() >= cfg_.k)
                        break;
                }
                if (predicted_.size() >= cfg_.k)
                    break;
            }
        }
    }

    // 3. Promote, in predicted first-use order. reschedule() queues
    //    at the back, so an in-flight demand fetch keeps priority and
    //    earlier promotions precede later ones.
    for (int s : predicted_) {
        const Stream &st = engine.stream(s);
        if (st.state != StreamState::Idle)
            continue;
        uint64_t was = st.scheduledStart;
        if (engine.reschedule(s, clock)) {
            ++stats_.promotions;
            if (obs)
                obs->record({clock, ObsKind::RunaheadPromote, s, -1, -1,
                             clock, was});
        }
    }

    // 4. Defer unpredicted idle starts that fall inside the
    //    speculation window. The window end is the exec-clock distance
    //    to the window's last event — a lower bound on when replay
    //    reaches it, since stalls only push first uses later — so no
    //    stream used inside the window is ever pushed past its use.
    if (end <= eventIdx + 1)
        return;
    uint64_t horizon = satAdd(
        clock, evs[end - 1].execClock - evs[eventIdx].execClock);
    if (horizon <= clock)
        return;
    for (size_t s = 0; s < mark_.size(); ++s) {
        if (mark_[s])
            continue;
        const Stream &st = engine.stream(static_cast<int>(s));
        if (st.state != StreamState::Idle)
            continue;
        uint64_t was = st.scheduledStart;
        if (was <= clock || was >= horizon)
            continue;
        if (engine.reschedule(static_cast<int>(s), horizon)) {
            ++stats_.deferrals;
            if (obs)
                obs->record({clock, ObsKind::RunaheadDefer,
                             static_cast<int>(s), -1, -1, horizon, was});
        }
    }
}

} // namespace nse
