/**
 * @file
 * Link behavior layer: variable bandwidth and transfer faults.
 *
 * The paper's evaluation assumes a perfectly constant link (one
 * cycles/byte figure per LinkModel). Real mobile links vary and drop:
 * this layer models both, deterministically, so every schedule built
 * against the *nominal* link can be *evaluated* under degraded
 * conditions — mispredictions and demand fetches absorb the slack,
 * exactly the paper's recovery path.
 *
 * Two orthogonal mechanisms:
 *
 *  - a BandwidthTrace scales the link's nominal bandwidth by a
 *    piecewise-constant multiplier over cycle windows (step profiles,
 *    or seeded burst profiles alternating nominal and degraded
 *    windows);
 *
 *  - per-stream interruption (drop) events: when a stream's byte
 *    cursor crosses a drop offset the connection is lost, the client
 *    retries after a timeout with exponential backoff, and the
 *    transfer resumes *from the drop offset* (HTTP range request —
 *    already-arrived bytes are never re-sent).
 *
 * Everything is seeded (support/rng.h), so faulted runs are as
 * reproducible byte-for-byte as the nominal ones.
 */

#ifndef NSE_TRANSFER_FAULTS_H
#define NSE_TRANSFER_FAULTS_H

#include <cstdint>
#include <vector>

namespace nse
{

/** One window of a bandwidth trace: from startCycle onward the link
 *  runs at multiplier x nominal bandwidth (until the next segment). */
struct RateSegment
{
    uint64_t startCycle = 0;
    double multiplier = 1.0;
};

/**
 * A piecewise-constant bandwidth multiplier over simulation cycles.
 * An empty trace is the nominal link (multiplier 1.0 forever).
 * A multiplier of 0 is a full outage window: no bytes move until the
 * next segment (the engine steps straight to the trace's next change
 * point). A trace whose *final* segment is 0 is a permanent outage —
 * waiting on an active stream then reports the fatal
 * "will never transfer" instead of looping.
 */
class BandwidthTrace
{
  public:
    BandwidthTrace() = default;

    /** Segments must be sorted by startCycle, first at cycle 0,
     *  multipliers >= 0 (0 = full outage). */
    explicit BandwidthTrace(std::vector<RateSegment> segments);

    /** Bandwidth multiplier in effect at `cycle`. */
    double multiplierAt(uint64_t cycle) const;

    /** First segment boundary strictly after `cycle`;
     *  UINT64_MAX = none. */
    uint64_t nextChangeAfter(uint64_t cycle) const;

    bool nominal() const { return segments_.empty(); }
    const std::vector<RateSegment> &segments() const { return segments_; }

    /** A single step: nominal until `at`, then `after` forever. */
    static BandwidthTrace step(uint64_t at, double after);

    /**
     * Seeded burst profile: alternating nominal and degraded windows
     * with jittered lengths averaging `meanWindowCycles`, repeating up
     * to `horizonCycles` (nominal afterwards). Deterministic in
     * `seed`.
     */
    static BandwidthTrace bursts(uint64_t seed, uint64_t meanWindowCycles,
                                 double degradedMultiplier,
                                 uint64_t horizonCycles);

  private:
    std::vector<RateSegment> segments_; ///< sorted by startCycle
};

/** One interruption of one stream: the connection drops when the
 *  stream's cursor reaches offsetBytes and needs `attempts` retries
 *  (each backed off exponentially) before transfer resumes. */
struct DropEvent
{
    uint64_t offsetBytes = 0;
    int attempts = 1;
};

/**
 * The full fault model for one simulated run: a bandwidth trace plus
 * a seeded per-stream drop process with retry/backoff parameters.
 * A default-constructed plan is all-nominal and must reproduce the
 * constant-rate engine byte-for-byte.
 */
struct FaultPlan
{
    BandwidthTrace trace;

    /** First-retry delay after a drop, in cycles. */
    uint64_t retryTimeoutCycles = 250'000;
    /** Each further failed attempt multiplies the delay by this. */
    double backoffFactor = 2.0;

    /** Seed for the per-stream drop process (mixed with stream idx). */
    uint64_t dropSeed = 0;
    /** Expected drops per 2^20 transferred bytes; 0 = no drops. */
    double dropsPerMByte = 0.0;
    /** Retries a drop may need before succeeding, in [1, maxAttempts]. */
    int maxAttempts = 1;

    /**
     * Explicit drop events per stream id, overriding the seeded
     * process for streams it covers (offsets strictly increasing,
     * interior to the stream). Lets tests pin exact fault timings and
     * lets recorded link traces be replayed.
     */
    std::vector<std::vector<DropEvent>> forcedDrops;

    /** True when the plan cannot perturb any transfer. */
    bool nominal() const;

    /** Total suspension cycles for a drop needing `attempts` retries:
     *  timeout * (1 + b + b^2 + ...), b = backoffFactor. */
    uint64_t retryDelay(int attempts) const;

    /**
     * Deterministic drop events for one stream, sorted by offset,
     * strictly inside (0, totalBytes). Depends only on (dropSeed,
     * streamIdx, totalBytes), never on scheduling, so the same plan
     * yields the same faults whatever order streams transfer in.
     */
    std::vector<DropEvent> dropsFor(int streamIdx,
                                    uint64_t totalBytes) const;
};

} // namespace nse

#endif // NSE_TRANSFER_FAULTS_H
