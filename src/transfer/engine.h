/**
 * @file
 * Event-driven shared-bandwidth transfer engine.
 *
 * Models the paper's parallel file transfer (§5.1): any number of
 * streams (class files, or one interleaved virtual file) share the
 * link's bandwidth *equally*; streams are never preempted once
 * started; an optional concurrency limit (HTTP 1.1's four pipelined
 * requests) queues further starts until a slot frees.
 *
 * The link itself is pluggable (transfer/faults.h): a FaultPlan adds
 * a piecewise-constant bandwidth multiplier over cycle windows plus
 * per-stream interruption events with retry-after-timeout,
 * exponential backoff, and resume-from-offset. The engine integrates
 * byte progress piecewise — every rate change (trace boundary, start,
 * completion, drop, resume) is an event, so within each integration
 * step the per-stream rate is exactly constant and watches/waitFor
 * stay cycle-exact under rate changes. A multiplier-0 window (a full
 * outage) is legal: no bytes move and the next event is the trace's
 * next change point, never a division by the zero rate. A default
 * (all-nominal) plan reproduces the constant-rate engine
 * byte-for-byte.
 *
 * The engine advances lazily: the co-simulation asks it to advance to
 * the VM clock, to start streams (scheduled ahead of time, or
 * on demand after a misprediction), and to wait until a byte offset of
 * a stream has arrived — the operation behind "execution stalls until
 * the procedure's delimiter has transferred".
 */

#ifndef NSE_TRANSFER_ENGINE_H
#define NSE_TRANSFER_ENGINE_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/event.h"
#include "transfer/faults.h"

namespace nse
{

/** Lifecycle of one transfer stream. */
enum class StreamState : uint8_t
{
    Idle,      ///< not started, not queued
    Queued,    ///< ready but waiting for a concurrency slot
    Active,    ///< transferring
    Suspended, ///< connection dropped; retrying, resumes from offset
    Done,      ///< fully transferred
};

/** One stream (one class file, or the interleaved virtual file). */
struct Stream
{
    std::string name;
    double totalBytes = 0;
    double arrivedBytes = 0;
    StreamState state = StreamState::Idle;
    /** Planned start cycle; UINT64_MAX = none planned. */
    uint64_t scheduledStart = UINT64_MAX;
    uint64_t startedAt = 0;
    uint64_t finishedAt = 0;
};

/** The shared-bandwidth transfer simulator. */
class TransferEngine
{
  public:
    /**
     * @param cycles_per_byte nominal link cost (see LinkModel)
     * @param max_concurrent  concurrent-stream limit; <= 0 = unlimited
     */
    TransferEngine(double cycles_per_byte, int max_concurrent);

    /** As above, evaluating transfers under a fault plan. */
    TransferEngine(double cycles_per_byte, int max_concurrent,
                   FaultPlan plan);

    /** Register a stream; returns its id. */
    int addStream(std::string name, uint64_t total_bytes);

    /** Plan a start cycle (from the transfer schedule). */
    void scheduleStart(int stream, uint64_t cycle);

    /**
     * Misprediction correction: start (or re-queue at the front) right
     * now. `now` must be >= the engine's current time.
     */
    void demandStart(int stream, uint64_t now);

    /**
     * Runahead reprioritization: move an *idle* stream's planned start
     * to `cycle`. A cycle at or before the engine clock promotes the
     * stream (it starts now, or queues behind already-waiting streams
     * when the concurrency limit is saturated); a later cycle defers
     * it. Streams that have started keep their bytes-already-sent:
     * only Idle streams are touched, so no transferred byte is ever
     * re-planned. Returns whether the plan changed.
     */
    bool reschedule(int stream, uint64_t cycle);

    /** Process all starts/completions up to and including `cycle`. */
    void advanceTo(uint64_t cycle);

    /**
     * Return the earliest cycle >= now at which `offset` bytes of the
     * stream have arrived, advancing the simulation to that cycle.
     * fatal()s when the stream can never reach the offset (not started
     * and nothing scheduled).
     */
    uint64_t waitFor(int stream, uint64_t offset, uint64_t now);

    /** Advance until every registered stream has completed. */
    uint64_t finishAll();

    /**
     * Watch a byte offset of a stream: the engine records the exact
     * cycle the offset is crossed. Used by the scheduler to read all
     * prefix-arrival times out of a single simulation. One watch per
     * stream; set before the stream crosses it. A zero-byte watch (an
     * empty needed prefix) is crossed the moment the stream starts.
     */
    void setWatch(int stream, uint64_t offset);

    /** Advance until every watch has been crossed. */
    void runWatches();

    /** Crossing cycle of the stream's watch; UINT64_MAX = not yet. */
    uint64_t watchedArrival(int stream) const;

    const Stream &stream(int idx) const;
    uint64_t time() const { return time_; }
    size_t activeCount() const { return active_; }
    bool allDone() const;

    /**
     * Externally imposed rate multiplier, composed multiplicatively
     * with the fault plan's bandwidth trace. This is how a server
     * simulation (server/server_sim.h) throttles one client's link to
     * its allocated share of a shared uplink: the allocator decides a
     * share, the server advances every engine to the allocation
     * instant, then sets the new multiplier — so within any
     * integration step the effective rate is still exactly constant.
     * 0 is legal (a fully starved client: no bytes move until the
     * next allocation). The caller must have advanced the engine to
     * the cycle the new rate takes effect; the default of 1.0
     * reproduces the unthrottled engine byte-for-byte.
     */
    void setExternalRate(double multiplier);
    double externalRate() const { return extRate_; }

    /**
     * The next internal event strictly after the current time, at
     * current rates: a scheduled start, a completion or drop-offset
     * estimate, a retry resume, or a bandwidth-trace change point.
     * UINT64_MAX = none. Pure query; the external event loop of the
     * server simulation uses it to bound global steps so allocation
     * changes never land inside an integration segment.
     */
    uint64_t nextEventTime() const { return nextEventAfter(time_); }

    /**
     * The exact step bound waitFor would take toward `offset` bytes
     * of `stream`: min(nextEventTime(), the crossing estimate at the
     * current rate). UINT64_MAX when no progress is possible at
     * current rates. Pure query — advancing to exactly this bound and
     * re-querying reproduces waitFor's step sequence (and therefore
     * its cycle-exact results) from outside the engine.
     */
    uint64_t nextStepToward(int stream, uint64_t offset) const;

    /** waitFor's arrival predicate as a pure query: have `offset`
     *  bytes of the stream arrived (within the engine's epsilon)? */
    bool hasArrived(int stream, uint64_t offset) const;

    /**
     * End of the engine's current *quiet window*: the earliest future
     * cycle at which its state can change at all. While any stream is
     * in flight (active, suspended, or queued) there is no window and
     * the current time is returned; otherwise no bytes move, no watch
     * can cross, and no accounting accumulates until the next
     * scheduled start, so every cycle strictly before the returned
     * value observes exactly the current state. UINT64_MAX = nothing
     * pending ever (all streams done or unscheduled). Pure query —
     * the batched replay integrator uses it to answer whole runs of
     * first-use waits arithmetically, without stepping the engine.
     */
    uint64_t quietUntil() const;

    /** Total retry attempts across all drop events triggered so far. */
    uint64_t retryCount() const { return retryCount_; }

    /** Cycles spent with the link below nominal bandwidth while any
     *  stream was in flight, or with any stream suspended on retry. */
    uint64_t degradedCycles() const { return degradedCycles_; }

    /**
     * Attach an event sink (obs/event.h); null detaches. Streams
     * already registered are announced immediately, then every
     * lifecycle edge (start, queue, drop, resume, complete) and watch
     * crossing is recorded as it happens. With no sink attached every
     * instrumentation site is a single null check.
     */
    void setSink(EventSink *sink);

  private:
    static constexpr double kEps = 1e-6;

    double perStreamRate() const;
    uint64_t nextEventAfter(uint64_t t) const;
    void progressTo(uint64_t t);
    void processEventsAt(uint64_t t);
    /** Rebuild the pending-start index (count + exact next cycle). */
    void recomputeNextStart();
    void activateOrQueue(int stream, uint64_t now, bool front);
    void markActive(size_t idx, uint64_t now);
    /** Byte cursor cap for a stream: its end, or its next pending
     *  drop offset (transfer pauses there until the retry succeeds). */
    double stopBytes(size_t idx) const;
    bool slotFree() const;
    void emit(ObsKind kind, uint64_t cycle, int stream, uint64_t a = 0,
              uint64_t b = 0);

    double cyclesPerByte_;
    EventSink *sink_ = nullptr;
    int maxConcurrent_;
    FaultPlan plan_;
    /** Server-imposed share of the link (setExternalRate). */
    double extRate_ = 1.0;
    uint64_t time_ = 0;
    size_t active_ = 0;
    size_t suspended_ = 0;
    uint64_t retryCount_ = 0;
    uint64_t degradedCycles_ = 0;
    std::vector<Stream> streams_;
    std::deque<int> queue_;
    /**
     * Event-loop fast-path index. The integrator's hot path
     * (advanceTo / waitFor, once or more per replayed first-use)
     * scans every stream in each of its bookkeeping passes; these
     * counters let the passes that cannot fire exit before touching
     * any stream. They are pure control flow — when a pass does run
     * it performs exactly the arithmetic it always did, so results
     * stay bit-identical. `nextStart_` is kept *exact* (recomputed
     * whenever the scheduled-start set changes) because it bounds
     * integration steps: an approximate bound would split
     * constant-rate segments at different points and perturb float
     * rounding.
     */
    size_t pendingStarts_ = 0;
    uint64_t nextStart_ = UINT64_MAX;
    uint64_t dropsPending_ = 0;
    /** Per-stream pending drop events and the next one's index. */
    std::vector<std::vector<DropEvent>> drops_;
    std::vector<size_t> nextDrop_;
    /** Resume cycle per suspended stream (UINT64_MAX = not suspended). */
    std::vector<uint64_t> resumeAt_;
    /** Watch per stream: set flag, offset, and its crossing cycle. */
    std::vector<uint8_t> watchSet_;
    std::vector<double> watchOffset_;
    std::vector<uint64_t> watchCrossed_;
};

} // namespace nse

#endif // NSE_TRANSFER_ENGINE_H
