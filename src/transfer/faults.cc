#include "transfer/faults.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"
#include "support/rng.h"

namespace nse
{

BandwidthTrace::BandwidthTrace(std::vector<RateSegment> segments)
    : segments_(std::move(segments))
{
    NSE_CHECK(!segments_.empty(), "empty segment list; default-construct "
                                  "a nominal trace instead");
    NSE_CHECK(segments_.front().startCycle == 0,
              "first trace segment must start at cycle 0");
    for (size_t i = 0; i < segments_.size(); ++i) {
        NSE_CHECK(segments_[i].multiplier >= 0,
                  "trace multiplier must be non-negative");
        if (i > 0) {
            NSE_CHECK(segments_[i - 1].startCycle <
                          segments_[i].startCycle,
                      "trace segments must be strictly sorted");
        }
    }
}

double
BandwidthTrace::multiplierAt(uint64_t cycle) const
{
    if (segments_.empty())
        return 1.0;
    // Last segment whose startCycle <= cycle.
    auto it = std::upper_bound(
        segments_.begin(), segments_.end(), cycle,
        [](uint64_t c, const RateSegment &s) { return c < s.startCycle; });
    NSE_ASSERT(it != segments_.begin(), "trace lookup before cycle 0");
    return std::prev(it)->multiplier;
}

uint64_t
BandwidthTrace::nextChangeAfter(uint64_t cycle) const
{
    auto it = std::upper_bound(
        segments_.begin(), segments_.end(), cycle,
        [](uint64_t c, const RateSegment &s) { return c < s.startCycle; });
    return it == segments_.end() ? UINT64_MAX : it->startCycle;
}

BandwidthTrace
BandwidthTrace::step(uint64_t at, double after)
{
    if (at == 0)
        return BandwidthTrace({{0, after}});
    return BandwidthTrace({{0, 1.0}, {at, after}});
}

BandwidthTrace
BandwidthTrace::bursts(uint64_t seed, uint64_t meanWindowCycles,
                       double degradedMultiplier, uint64_t horizonCycles)
{
    NSE_CHECK(meanWindowCycles > 0, "burst window must be positive");
    NSE_CHECK(degradedMultiplier >= 0, "degraded multiplier must be "
                                       "non-negative");
    Rng rng(seed ^ 0x6c1b8e5a2f9d3c47ULL);
    std::vector<RateSegment> segs;
    uint64_t t = 0;
    bool degraded = false;
    while (t < horizonCycles) {
        // Window length jittered in [mean/2, 3*mean/2).
        uint64_t len = meanWindowCycles / 2 + rng.below(meanWindowCycles);
        len = std::max<uint64_t>(len, 1);
        segs.push_back({t, degraded ? degradedMultiplier : 1.0});
        t += len;
        degraded = !degraded;
    }
    segs.push_back({std::max<uint64_t>(horizonCycles, t), 1.0});
    return BandwidthTrace(std::move(segs));
}

bool
FaultPlan::nominal() const
{
    if (!trace.nominal() || dropsPerMByte > 0.0)
        return false;
    for (const auto &d : forcedDrops)
        if (!d.empty())
            return false;
    return true;
}

uint64_t
FaultPlan::retryDelay(int attempts) const
{
    NSE_ASSERT(attempts >= 1, "drop with no retry attempts");
    double delay = 0;
    double step = static_cast<double>(retryTimeoutCycles);
    for (int k = 0; k < attempts; ++k) {
        delay += step;
        step *= backoffFactor;
    }
    return static_cast<uint64_t>(std::ceil(delay));
}

std::vector<DropEvent>
FaultPlan::dropsFor(int streamIdx, uint64_t totalBytes) const
{
    std::vector<DropEvent> drops;
    if (streamIdx >= 0 &&
        static_cast<size_t>(streamIdx) < forcedDrops.size()) {
        for (const DropEvent &d : forcedDrops[static_cast<size_t>(
                 streamIdx)]) {
            NSE_CHECK(d.offsetBytes > 0 && d.offsetBytes < totalBytes,
                      "forced drop offset must be interior to the "
                      "stream");
            NSE_CHECK(d.attempts >= 1, "forced drop needs >= 1 attempt");
            NSE_CHECK(drops.empty() ||
                          drops.back().offsetBytes < d.offsetBytes,
                      "forced drops must be strictly increasing");
            drops.push_back(d);
        }
        return drops;
    }
    if (dropsPerMByte <= 0.0 || totalBytes < 2)
        return drops;
    NSE_CHECK(maxAttempts >= 1, "maxAttempts must be at least 1");

    // Walk the stream in fixed chunks; each chunk drops independently
    // with probability dropsPerMByte * chunk / 2^20, at a uniform
    // offset inside the chunk. Mixing the stream index into the seed
    // decorrelates streams.
    constexpr uint64_t kChunk = 4096;
    Rng rng(dropSeed ^
            (0x9e3779b97f4a7c15ULL *
             (static_cast<uint64_t>(streamIdx) + 0x51ed2701ULL)));
    double p = dropsPerMByte * static_cast<double>(kChunk) /
               (1024.0 * 1024.0);
    p = std::min(p, 1.0);
    // 53-bit uniform fraction in [0, 1).
    auto frac = [&rng] {
        return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
    };
    for (uint64_t base = 0; base < totalBytes; base += kChunk) {
        if (frac() >= p)
            continue;
        uint64_t span = std::min(kChunk, totalBytes - base);
        uint64_t off = base + rng.below(span);
        // Strictly interior: a drop at offset 0 or at the end would be
        // a no-op connection loss.
        off = std::min(std::max<uint64_t>(off, 1), totalBytes - 1);
        int attempts =
            1 + static_cast<int>(
                    rng.below(static_cast<uint64_t>(maxAttempts)));
        if (!drops.empty() && drops.back().offsetBytes >= off)
            continue; // keep offsets strictly increasing
        drops.push_back({off, attempts});
    }
    return drops;
}

} // namespace nse
