/**
 * @file
 * Greedy transfer scheduling for parallel file transfer (paper §5.1).
 *
 * The schedule decides when each class file begins transferring so
 * that every class's *needed prefix* (global data plus the methods up
 * to its first-used one) arrives before the predicted cycle of its
 * first use — the paper's Figure 4, where class B starts before class
 * A so that Bar_B has fully arrived when main calls it.
 *
 * The greedy algorithm processes classes in the order their first
 * method is predicted to run. Each class is assigned the *latest*
 * start cycle that still delivers its needed prefix by its deadline,
 * verified against the shared-bandwidth link model (equal split,
 * concurrency limit) including every already-scheduled class; when no
 * start can meet the deadline the class starts at cycle 0. Predicted
 * first-use instants come from a profile run (train or test), or — for
 * the static estimator — from the cumulative static cycle cost of all
 * code placed earlier in the first-use order.
 *
 * Mispredicted classes are demand-fetched at run time (TransferEngine).
 */

#ifndef NSE_TRANSFER_SCHEDULE_H
#define NSE_TRANSFER_SCHEDULE_H

#include <cstdint>
#include <vector>

#include "analysis/first_use.h"
#include "restructure/layout.h"
#include "transfer/faults.h"
#include "transfer/link.h"

namespace nse
{

/** Planned start cycle per layout stream. */
struct TransferSchedule
{
    std::vector<uint64_t> startCycle;
};

/** Per-stream scheduling inputs derived from a first-use ordering. */
struct StreamDemand
{
    /** Streams in order of their first method's predicted first use. */
    std::vector<int> streamOrder;
    /** Needed-prefix bytes per stream (through its first-used method). */
    std::vector<uint64_t> prefixBytes;
    /** Predicted first-use cycle per stream (UINT64_MAX = never). */
    std::vector<uint64_t> deadline;
    /**
     * First-use dependencies (paper §5.1): deps[s] holds, for every
     * class first-used before s, the bytes of that class needed before
     * s's first method runs (its byte high-water at that point).
     */
    std::vector<std::vector<std::pair<int, uint64_t>>> deps;
};

/**
 * Derive per-stream prefixes and deadlines from the global first-use
 * order and per-method predicted first-use cycles (parallel to
 * order.order; UINT64_MAX for appended never-used methods).
 */
StreamDemand deriveStreamDemand(const Program &prog,
                                const FirstUseOrder &order,
                                const TransferLayout &layout,
                                const std::vector<uint64_t> &method_cycles);

/**
 * Predicted first-use cycles for an ordering with no profile: the
 * cumulative static cycle cost (per-opcode interpreter costs) of all
 * code placed earlier. Parallel to order.order.
 */
std::vector<uint64_t> staticFirstUseCycles(const Program &prog,
                                           const FirstUseOrder &order);

/**
 * Build the greedy latest-feasible-start schedule.
 *
 * `faults` is the plan the run will be *evaluated* under. Planning is
 * always done against the nominal link — the server cannot foresee
 * bandwidth dips or connection drops — so the plan does not change
 * the schedule; it is threaded through so the planning contract
 * ("schedule nominal, evaluate faulted, let demand fetches absorb the
 * slack") lives in one signature, and so a future policy that plans
 * against a *known* degradation trace has a place to hang.
 */
TransferSchedule buildGreedySchedule(const TransferLayout &layout,
                                     const StreamDemand &demand,
                                     const LinkModel &link, int limit,
                                     const FaultPlan *faults = nullptr);

} // namespace nse

#endif // NSE_TRANSFER_SCHEDULE_H
