#include "transfer/engine.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace nse
{

namespace
{

/** t + ceil(cycles), saturating to "never" (UINT64_MAX). A completion
 *  estimate can exceed the uint64 cycle range (a huge stream sharing
 *  a glacial link); casting such a double is UB and wraps to a small
 *  value on x86-64, which turns the event loop into one-cycle steps.
 *  A saturated estimate contributes no event, like a rate-0 stream. */
uint64_t
completionAt(uint64_t t, double cycles)
{
    double est = std::ceil(cycles);
    // 2^64 is exactly representable; anything at or beyond it cannot
    // be cast.
    if (est >= 18446744073709551616.0)
        return UINT64_MAX;
    auto c = static_cast<uint64_t>(est);
    return t > UINT64_MAX - c ? UINT64_MAX : t + c;
}

} // namespace

TransferEngine::TransferEngine(double cycles_per_byte, int max_concurrent)
    : TransferEngine(cycles_per_byte, max_concurrent, FaultPlan{})
{}

TransferEngine::TransferEngine(double cycles_per_byte, int max_concurrent,
                               FaultPlan plan)
    : cyclesPerByte_(cycles_per_byte), maxConcurrent_(max_concurrent),
      plan_(std::move(plan))
{
    NSE_CHECK(cycles_per_byte > 0, "non-positive link cost");
}

void
TransferEngine::setSink(EventSink *sink)
{
    sink_ = sink;
    if (!sink_)
        return;
    for (size_t i = 0; i < streams_.size(); ++i) {
        sink_->noteStream(static_cast<int>(i), streams_[i].name,
                          static_cast<uint64_t>(streams_[i].totalBytes));
    }
}

void
TransferEngine::emit(ObsKind kind, uint64_t cycle, int stream,
                     uint64_t a, uint64_t b)
{
    if (!sink_)
        return;
    ObsEvent ev;
    ev.cycle = cycle;
    ev.kind = kind;
    ev.stream = stream;
    ev.a = a;
    ev.b = b;
    sink_->record(ev);
}

int
TransferEngine::addStream(std::string name, uint64_t total_bytes)
{
    NSE_CHECK(total_bytes > 0, "empty stream: ", name);
    Stream s;
    s.name = std::move(name);
    s.totalBytes = static_cast<double>(total_bytes);
    int idx = static_cast<int>(streams_.size());
    if (sink_)
        sink_->noteStream(idx, s.name, total_bytes);
    streams_.push_back(std::move(s));
    drops_.push_back(plan_.dropsFor(idx, total_bytes));
    dropsPending_ += drops_.back().size();
    nextDrop_.push_back(0);
    resumeAt_.push_back(UINT64_MAX);
    watchSet_.push_back(0);
    watchOffset_.push_back(0.0);
    watchCrossed_.push_back(UINT64_MAX);
    return idx;
}

const Stream &
TransferEngine::stream(int idx) const
{
    NSE_ASSERT(idx >= 0 && static_cast<size_t>(idx) < streams_.size(),
               "bad stream id ", idx);
    return streams_[static_cast<size_t>(idx)];
}

bool
TransferEngine::allDone() const
{
    for (const Stream &s : streams_)
        if (s.state != StreamState::Done)
            return false;
    return true;
}

double
TransferEngine::perStreamRate() const
{
    if (active_ == 0)
        return 0.0;
    // extRate_ defaults to 1.0; multiplying by it exactly is a no-op,
    // so an unthrottled engine is bit-identical to the pre-server one.
    return plan_.trace.multiplierAt(time_) * extRate_ /
           (cyclesPerByte_ * static_cast<double>(active_));
}

void
TransferEngine::setExternalRate(double multiplier)
{
    NSE_CHECK(multiplier >= 0.0, "negative external rate multiplier");
    extRate_ = multiplier;
}

uint64_t
TransferEngine::nextStepToward(int stream, uint64_t offset) const
{
    auto si = static_cast<size_t>(stream);
    NSE_ASSERT(si < streams_.size(), "bad stream id ", stream);
    uint64_t ev = nextEventAfter(time_);
    const Stream &s = streams_[si];
    double rate = perStreamRate();
    if (s.state == StreamState::Active && rate > 0.0) {
        // Identical arithmetic to waitFor's crossing estimate, so an
        // external loop stepping to this bound reproduces waitFor's
        // integration segments exactly.
        double remaining =
            std::min(static_cast<double>(offset), stopBytes(si)) -
            s.arrivedBytes;
        uint64_t cross = completionAt(time_, remaining / rate);
        if (cross != UINT64_MAX)
            ev = std::min(ev, std::max(cross, time_ + 1));
    }
    return ev;
}

bool
TransferEngine::hasArrived(int stream, uint64_t offset) const
{
    auto si = static_cast<size_t>(stream);
    NSE_ASSERT(si < streams_.size(), "bad stream id ", stream);
    return streams_[si].arrivedBytes + kEps >=
           static_cast<double>(offset);
}

uint64_t
TransferEngine::quietUntil() const
{
    // Anything in flight can make progress (or retry) at any cycle:
    // no quiet window. A non-empty queue implies a full slot table,
    // which implies active streams, but check it anyway.
    if (active_ > 0 || suspended_ > 0 || !queue_.empty())
        return time_;
    if (pendingStarts_ == 0)
        return UINT64_MAX;
    return std::max(nextStart_, time_);
}

bool
TransferEngine::slotFree() const
{
    // A suspended stream keeps its connection slot while retrying.
    return maxConcurrent_ <= 0 ||
           active_ + suspended_ < static_cast<size_t>(maxConcurrent_);
}

void
TransferEngine::markActive(size_t idx, uint64_t now)
{
    Stream &s = streams_[idx];
    s.state = StreamState::Active;
    s.startedAt = now;
    ++active_;
    emit(ObsKind::StreamStart, now, static_cast<int>(idx),
         static_cast<uint64_t>(s.arrivedBytes));
    // An empty needed prefix arrives the moment the stream starts.
    if (watchSet_[idx] && watchOffset_[idx] <= 0.0 &&
        watchCrossed_[idx] == UINT64_MAX) {
        watchCrossed_[idx] = now;
        emit(ObsKind::WatchCross, now, static_cast<int>(idx), 0);
    }
}

void
TransferEngine::activateOrQueue(int stream, uint64_t now, bool front)
{
    Stream &s = streams_[static_cast<size_t>(stream)];
    NSE_ASSERT(s.state == StreamState::Idle,
               "activate on non-idle stream ", s.name);
    if (slotFree()) {
        markActive(static_cast<size_t>(stream), now);
    } else {
        s.state = StreamState::Queued;
        emit(ObsKind::StreamQueue, now, stream);
        if (front)
            queue_.push_front(stream);
        else
            queue_.push_back(stream);
    }
}

double
TransferEngine::stopBytes(size_t idx) const
{
    const Stream &s = streams_[idx];
    if (nextDrop_[idx] < drops_[idx].size()) {
        return std::min(s.totalBytes,
                        static_cast<double>(
                            drops_[idx][nextDrop_[idx]].offsetBytes));
    }
    return s.totalBytes;
}

uint64_t
TransferEngine::nextEventAfter(uint64_t t) const
{
    uint64_t next = UINT64_MAX;
    if (pendingStarts_ > 0) {
        if (nextStart_ > t) {
            // The index is exact, so this is the same bound the
            // per-stream scan below would find.
            next = nextStart_;
        } else {
            // A due start not yet processed (public pure-query use
            // between processEventsAt calls): fall back to scanning.
            for (const Stream &s : streams_) {
                if (s.state == StreamState::Idle &&
                    s.scheduledStart != UINT64_MAX &&
                    s.scheduledStart > t) {
                    next = std::min(next, s.scheduledStart);
                }
            }
        }
    }
    if (active_ > 0 || suspended_ > 0) {
        double rate = perStreamRate();
        for (size_t i = 0; i < streams_.size(); ++i) {
            const Stream &s = streams_[i];
            if (s.state == StreamState::Active && rate > 0.0) {
                // The next stop for this stream: completion, or
                // pausing at its next drop offset. Exact while the
                // rate holds; a trace boundary before then fires
                // first and we re-estimate at the new rate. During a
                // full outage (rate 0) no bytes move, so the stream
                // contributes no event — the trace's next change
                // point below bounds the step instead (ceil(x / 0)
                // would be UB to cast).
                double remaining = stopBytes(i) - s.arrivedBytes;
                uint64_t done_at = completionAt(t, remaining / rate);
                if (done_at != UINT64_MAX)
                    next = std::min(next, std::max(done_at, t + 1));
            } else if (s.state == StreamState::Suspended &&
                       resumeAt_[i] > t) {
                next = std::min(next, resumeAt_[i]);
            }
        }
    }
    if (active_ > 0)
        next = std::min(next, plan_.trace.nextChangeAfter(t));
    return next;
}

void
TransferEngine::progressTo(uint64_t t)
{
    NSE_ASSERT(t >= time_, "engine time moved backwards");
    if (t == time_)
        return;
    // Constant-rate segment: every rate change (start, completion,
    // drop, resume, trace boundary) is an event, so no caller ever
    // crosses one inside [time_, t).
    double rate = perStreamRate();
    double delta = static_cast<double>(t - time_) * rate;
    if ((active_ > 0 &&
         plan_.trace.multiplierAt(time_) * extRate_ < 1.0) ||
        suspended_ > 0) {
        degradedCycles_ += t - time_;
    }
    for (size_t i = 0; active_ > 0 && i < streams_.size(); ++i) {
        Stream &s = streams_[i];
        if (s.state != StreamState::Active)
            continue;
        double before = s.arrivedBytes;
        s.arrivedBytes = std::min(stopBytes(i), s.arrivedBytes + delta);
        if (watchSet_[i] && watchOffset_[i] > 0 &&
            watchCrossed_[i] == UINT64_MAX &&
            s.arrivedBytes + kEps >= watchOffset_[i]) {
            // rate can be 0 here only when the offset was already
            // within kEps at segment entry; the crossing is "now".
            double need = watchOffset_[i] - before;
            watchCrossed_[i] =
                rate > 0.0
                    ? time_ + static_cast<uint64_t>(std::ceil(
                                  std::max(0.0, need) / rate))
                    : time_;
            emit(ObsKind::WatchCross, watchCrossed_[i],
                 static_cast<int>(i),
                 static_cast<uint64_t>(watchOffset_[i]));
        }
    }
    time_ = t;
}

void
TransferEngine::recomputeNextStart()
{
    pendingStarts_ = 0;
    nextStart_ = UINT64_MAX;
    for (const Stream &s : streams_) {
        if (s.state == StreamState::Idle &&
            s.scheduledStart != UINT64_MAX) {
            ++pendingStarts_;
            nextStart_ = std::min(nextStart_, s.scheduledStart);
        }
    }
}

void
TransferEngine::processEventsAt(uint64_t t)
{
    // Each pass below is gated on a counter saying it can fire at
    // all; a skipped pass would have scanned every stream and found
    // nothing. Pass order (completions, drops, retries, starts,
    // queue) is load-bearing: completions free slots before starts
    // claim them.
    if (active_ > 0) {
        // Completions first: they free slots for queued/scheduled
        // streams.
        for (size_t i = 0; i < streams_.size(); ++i) {
            Stream &s = streams_[i];
            if (s.state == StreamState::Active &&
                s.arrivedBytes >= s.totalBytes - kEps) {
                s.arrivedBytes = s.totalBytes;
                s.state = StreamState::Done;
                s.finishedAt = t;
                NSE_ASSERT(active_ > 0, "active count underflow");
                --active_;
                emit(ObsKind::StreamComplete, t, static_cast<int>(i),
                     static_cast<uint64_t>(s.totalBytes));
            }
        }
    }
    if (active_ > 0 && dropsPending_ > 0) {
        // Drops: a stream whose cursor reached its next drop offset
        // loses its connection and retries with exponential backoff;
        // it resumes from the drop offset (bytes already arrived are
        // kept).
        for (size_t i = 0; i < streams_.size(); ++i) {
            Stream &s = streams_[i];
            if (s.state != StreamState::Active ||
                nextDrop_[i] >= drops_[i].size()) {
                continue;
            }
            const DropEvent &d = drops_[i][nextDrop_[i]];
            if (s.arrivedBytes + kEps >=
                static_cast<double>(d.offsetBytes)) {
                s.state = StreamState::Suspended;
                resumeAt_[i] = t + plan_.retryDelay(d.attempts);
                retryCount_ += static_cast<uint64_t>(d.attempts);
                ++nextDrop_[i];
                --dropsPending_;
                NSE_ASSERT(active_ > 0, "active count underflow");
                --active_;
                ++suspended_;
                emit(ObsKind::StreamDrop, t, static_cast<int>(i),
                     d.offsetBytes, resumeAt_[i]);
            }
        }
    }
    if (suspended_ > 0) {
        // Retries that succeeded by now resume transferring.
        for (size_t i = 0; i < streams_.size(); ++i) {
            Stream &s = streams_[i];
            if (s.state == StreamState::Suspended &&
                resumeAt_[i] <= t) {
                s.state = StreamState::Active;
                resumeAt_[i] = UINT64_MAX;
                NSE_ASSERT(suspended_ > 0,
                           "suspended count underflow");
                --suspended_;
                ++active_;
                emit(ObsKind::StreamResume, t, static_cast<int>(i),
                     static_cast<uint64_t>(s.arrivedBytes));
            }
        }
    }
    if (pendingStarts_ > 0 && nextStart_ <= t) {
        // Scheduled starts due by now.
        for (size_t i = 0; i < streams_.size(); ++i) {
            Stream &s = streams_[i];
            if (s.state == StreamState::Idle &&
                s.scheduledStart != UINT64_MAX &&
                s.scheduledStart <= t) {
                activateOrQueue(static_cast<int>(i), t,
                                /*front=*/false);
            }
        }
        recomputeNextStart();
    }
    // Fill freed slots from the queue, FIFO.
    while (!queue_.empty() && slotFree()) {
        int idx = queue_.front();
        queue_.pop_front();
        NSE_ASSERT(streams_[static_cast<size_t>(idx)].state ==
                       StreamState::Queued,
                   "queue corruption");
        markActive(static_cast<size_t>(idx), t);
    }
}

void
TransferEngine::advanceTo(uint64_t cycle)
{
    NSE_CHECK(cycle >= time_, "advanceTo into the past");
    processEventsAt(time_);
    while (time_ < cycle) {
        uint64_t ev = nextEventAfter(time_);
        uint64_t step = std::min(ev, cycle);
        progressTo(step);
        processEventsAt(step);
    }
}

void
TransferEngine::scheduleStart(int stream, uint64_t cycle)
{
    Stream &s = streams_[static_cast<size_t>(stream)];
    NSE_CHECK(s.state == StreamState::Idle,
              "scheduleStart on started stream ", s.name);
    s.scheduledStart = cycle;
    recomputeNextStart();
}

void
TransferEngine::demandStart(int stream, uint64_t now)
{
    // Callers track their own clock, which may trail the engine's
    // (waitFor advances it); never rewind.
    advanceTo(std::max(now, time_));
    Stream &s = streams_[static_cast<size_t>(stream)];
    switch (s.state) {
      case StreamState::Active:
      case StreamState::Suspended:
      case StreamState::Done:
        return; // already on its way
      case StreamState::Queued: {
        // Move to the front: "queued up to be transferred next".
        auto it = std::find(queue_.begin(), queue_.end(), stream);
        NSE_ASSERT(it != queue_.end(), "queued stream missing from queue");
        queue_.erase(it);
        queue_.push_front(stream);
        return;
      }
      case StreamState::Idle:
        s.scheduledStart = UINT64_MAX;
        recomputeNextStart();
        // Start at the engine clock, not the caller's: advanceTo
        // above may have moved time_ past `now`, and a stream must
        // never record startedAt in the engine's past.
        activateOrQueue(stream, time_, /*front=*/true);
        return;
    }
}

bool
TransferEngine::reschedule(int stream, uint64_t cycle)
{
    Stream &s = streams_[static_cast<size_t>(stream)];
    if (s.state != StreamState::Idle)
        return false; // bytes-already-sent invariant: never re-plan
    if (cycle <= time_) {
        // Promotion: behave like a planned start that is already due.
        // Queue at the *back* so demand fetches (the stream execution
        // is blocked on right now) keep absolute priority.
        s.scheduledStart = UINT64_MAX;
        recomputeNextStart();
        activateOrQueue(stream, time_, /*front=*/false);
        return true;
    }
    if (s.scheduledStart == cycle)
        return false;
    s.scheduledStart = cycle;
    recomputeNextStart();
    return true;
}

uint64_t
TransferEngine::waitFor(int stream, uint64_t offset, uint64_t now)
{
    advanceTo(std::max(now, time_));
    Stream &s = streams_[static_cast<size_t>(stream)];
    NSE_CHECK(static_cast<double>(offset) <= s.totalBytes + kEps,
              "wait past the end of stream ", s.name);
    auto target = static_cast<double>(offset);

    while (s.arrivedBytes + kEps < target) {
        uint64_t ev = nextEventAfter(time_);
        double rate = perStreamRate();
        if (s.state == StreamState::Active && rate > 0.0) {
            // Crossing estimate at the current rate, valid up to the
            // next event (nextEventAfter caps it at trace boundaries
            // and this stream's own drop offsets). During a full
            // outage (rate 0) there is no crossing to estimate; the
            // trace's next change point is already in `ev`.
            double remaining =
                std::min(target, stopBytes(static_cast<size_t>(
                                     stream))) -
                s.arrivedBytes;
            uint64_t cross = completionAt(time_, remaining / rate);
            if (cross != UINT64_MAX)
                ev = std::min(ev, std::max(cross, time_ + 1));
        }
        if (ev == UINT64_MAX) {
            fatal("waiting on stream ", s.name,
                  " which will never transfer (not started and "
                  "nothing scheduled, or the link is in a permanent "
                  "zero-bandwidth outage)");
        }
        progressTo(ev);
        processEventsAt(ev);
    }
    return std::max(now, time_);
}

void
TransferEngine::setWatch(int stream, uint64_t offset)
{
    auto si = static_cast<size_t>(stream);
    NSE_ASSERT(si < streams_.size(), "bad stream id ", stream);
    watchSet_[si] = 1;
    watchOffset_[si] = static_cast<double>(offset);
    const Stream &s = streams_[si];
    bool started = s.state != StreamState::Idle &&
                   s.state != StreamState::Queued;
    if (started && s.arrivedBytes + kEps >= static_cast<double>(offset)) {
        // Already crossed (a zero-byte prefix counts as crossed the
        // moment the stream starts).
        watchCrossed_[si] = time_;
        emit(ObsKind::WatchCross, time_, stream, offset);
    } else {
        watchCrossed_[si] = UINT64_MAX;
    }
}

void
TransferEngine::runWatches()
{
    auto pending = [&] {
        for (size_t i = 0; i < streams_.size(); ++i) {
            if (watchSet_[i] && watchCrossed_[i] == UINT64_MAX)
                return true;
        }
        return false;
    };
    processEventsAt(time_);
    while (pending()) {
        uint64_t ev = nextEventAfter(time_);
        if (ev == UINT64_MAX)
            fatal("runWatches: a watched stream will never transfer");
        progressTo(ev);
        processEventsAt(ev);
    }
}

uint64_t
TransferEngine::watchedArrival(int stream) const
{
    auto si = static_cast<size_t>(stream);
    NSE_ASSERT(si < streams_.size(), "bad stream id ", stream);
    return watchCrossed_[si];
}

uint64_t
TransferEngine::finishAll()
{
    processEventsAt(time_);
    while (!allDone()) {
        uint64_t ev = nextEventAfter(time_);
        if (ev == UINT64_MAX)
            fatal("finishAll with streams that will never start");
        progressTo(ev);
        processEventsAt(ev);
    }
    return time_;
}

} // namespace nse
