#include "transfer/engine.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace nse
{

TransferEngine::TransferEngine(double cycles_per_byte, int max_concurrent)
    : cyclesPerByte_(cycles_per_byte), maxConcurrent_(max_concurrent)
{
    NSE_CHECK(cycles_per_byte > 0, "non-positive link cost");
}

int
TransferEngine::addStream(std::string name, uint64_t total_bytes)
{
    NSE_CHECK(total_bytes > 0, "empty stream: ", name);
    Stream s;
    s.name = std::move(name);
    s.totalBytes = static_cast<double>(total_bytes);
    streams_.push_back(std::move(s));
    watchOffset_.push_back(0.0);
    watchCrossed_.push_back(UINT64_MAX);
    return static_cast<int>(streams_.size() - 1);
}

const Stream &
TransferEngine::stream(int idx) const
{
    NSE_ASSERT(idx >= 0 && static_cast<size_t>(idx) < streams_.size(),
               "bad stream id ", idx);
    return streams_[static_cast<size_t>(idx)];
}

bool
TransferEngine::allDone() const
{
    for (const Stream &s : streams_)
        if (s.state != StreamState::Done)
            return false;
    return true;
}

double
TransferEngine::perStreamRate() const
{
    if (active_ == 0)
        return 0.0;
    return 1.0 / (cyclesPerByte_ * static_cast<double>(active_));
}

void
TransferEngine::activateOrQueue(int stream, uint64_t now, bool front)
{
    Stream &s = streams_[static_cast<size_t>(stream)];
    NSE_ASSERT(s.state == StreamState::Idle,
               "activate on non-idle stream ", s.name);
    bool slot_free = maxConcurrent_ <= 0 ||
                     active_ < static_cast<size_t>(maxConcurrent_);
    if (slot_free) {
        s.state = StreamState::Active;
        s.startedAt = now;
        ++active_;
    } else {
        s.state = StreamState::Queued;
        if (front)
            queue_.push_front(stream);
        else
            queue_.push_back(stream);
    }
}

uint64_t
TransferEngine::nextEventAfter(uint64_t t) const
{
    uint64_t next = UINT64_MAX;
    double rate = perStreamRate();
    for (size_t i = 0; i < streams_.size(); ++i) {
        const Stream &s = streams_[i];
        if (s.state == StreamState::Idle &&
            s.scheduledStart != UINT64_MAX && s.scheduledStart > t) {
            next = std::min(next, s.scheduledStart);
        } else if (s.state == StreamState::Active) {
            double remaining = s.totalBytes - s.arrivedBytes;
            uint64_t done_at =
                t + static_cast<uint64_t>(std::ceil(remaining / rate));
            next = std::min(next, std::max(done_at, t + 1));
        }
    }
    return next;
}

void
TransferEngine::progressTo(uint64_t t)
{
    NSE_ASSERT(t >= time_, "engine time moved backwards");
    if (t == time_)
        return;
    double rate = perStreamRate();
    double delta = static_cast<double>(t - time_) * rate;
    for (size_t i = 0; i < streams_.size(); ++i) {
        Stream &s = streams_[i];
        if (s.state != StreamState::Active)
            continue;
        double before = s.arrivedBytes;
        s.arrivedBytes = std::min(s.totalBytes, s.arrivedBytes + delta);
        if (watchOffset_[i] > 0 && watchCrossed_[i] == UINT64_MAX &&
            s.arrivedBytes + kEps >= watchOffset_[i]) {
            double need = watchOffset_[i] - before;
            watchCrossed_[i] =
                time_ + static_cast<uint64_t>(
                            std::ceil(std::max(0.0, need) / rate));
        }
    }
    time_ = t;
}

void
TransferEngine::processEventsAt(uint64_t t)
{
    // Completions first: they free slots for queued/scheduled streams.
    for (Stream &s : streams_) {
        if (s.state == StreamState::Active &&
            s.arrivedBytes >= s.totalBytes - kEps) {
            s.arrivedBytes = s.totalBytes;
            s.state = StreamState::Done;
            s.finishedAt = t;
            NSE_ASSERT(active_ > 0, "active count underflow");
            --active_;
        }
    }
    // Scheduled starts due by now.
    for (size_t i = 0; i < streams_.size(); ++i) {
        Stream &s = streams_[i];
        if (s.state == StreamState::Idle &&
            s.scheduledStart != UINT64_MAX && s.scheduledStart <= t) {
            activateOrQueue(static_cast<int>(i), t, /*front=*/false);
        }
    }
    // Fill freed slots from the queue, FIFO.
    while (!queue_.empty() &&
           (maxConcurrent_ <= 0 ||
            active_ < static_cast<size_t>(maxConcurrent_))) {
        int idx = queue_.front();
        queue_.pop_front();
        Stream &s = streams_[static_cast<size_t>(idx)];
        NSE_ASSERT(s.state == StreamState::Queued, "queue corruption");
        s.state = StreamState::Active;
        s.startedAt = t;
        ++active_;
    }
}

void
TransferEngine::advanceTo(uint64_t cycle)
{
    NSE_CHECK(cycle >= time_, "advanceTo into the past");
    processEventsAt(time_);
    while (time_ < cycle) {
        uint64_t ev = nextEventAfter(time_);
        uint64_t step = std::min(ev, cycle);
        progressTo(step);
        processEventsAt(step);
    }
}

void
TransferEngine::scheduleStart(int stream, uint64_t cycle)
{
    Stream &s = streams_[static_cast<size_t>(stream)];
    NSE_CHECK(s.state == StreamState::Idle,
              "scheduleStart on started stream ", s.name);
    s.scheduledStart = cycle;
}

void
TransferEngine::demandStart(int stream, uint64_t now)
{
    // Callers track their own clock, which may trail the engine's
    // (waitFor advances it); never rewind.
    advanceTo(std::max(now, time_));
    Stream &s = streams_[static_cast<size_t>(stream)];
    switch (s.state) {
      case StreamState::Active:
      case StreamState::Done:
        return; // already on its way
      case StreamState::Queued: {
        // Move to the front: "queued up to be transferred next".
        auto it = std::find(queue_.begin(), queue_.end(), stream);
        NSE_ASSERT(it != queue_.end(), "queued stream missing from queue");
        queue_.erase(it);
        queue_.push_front(stream);
        return;
      }
      case StreamState::Idle:
        s.scheduledStart = UINT64_MAX;
        activateOrQueue(stream, now, /*front=*/true);
        return;
    }
}

uint64_t
TransferEngine::waitFor(int stream, uint64_t offset, uint64_t now)
{
    advanceTo(std::max(now, time_));
    Stream &s = streams_[static_cast<size_t>(stream)];
    NSE_CHECK(static_cast<double>(offset) <= s.totalBytes + kEps,
              "wait past the end of stream ", s.name);
    auto target = static_cast<double>(offset);

    while (s.arrivedBytes + kEps < target) {
        uint64_t ev = nextEventAfter(time_);
        if (s.state == StreamState::Active) {
            double rate = perStreamRate();
            double remaining = target - s.arrivedBytes;
            uint64_t cross =
                time_ +
                static_cast<uint64_t>(std::ceil(remaining / rate));
            ev = std::min(ev, std::max(cross, time_ + 1));
        } else if (ev == UINT64_MAX) {
            fatal("waiting on stream ", s.name,
                  " which will never transfer (not started, nothing "
                  "scheduled)");
        }
        progressTo(ev);
        processEventsAt(ev);
    }
    return std::max(now, time_);
}

void
TransferEngine::setWatch(int stream, uint64_t offset)
{
    auto si = static_cast<size_t>(stream);
    NSE_ASSERT(si < streams_.size(), "bad stream id ", stream);
    NSE_CHECK(offset > 0, "watch offset must be positive");
    watchOffset_[si] = static_cast<double>(offset);
    if (streams_[si].arrivedBytes + kEps >=
        static_cast<double>(offset)) {
        watchCrossed_[si] = time_;
    } else {
        watchCrossed_[si] = UINT64_MAX;
    }
}

void
TransferEngine::runWatches()
{
    auto pending = [&] {
        for (size_t i = 0; i < streams_.size(); ++i) {
            if (watchOffset_[i] > 0 && watchCrossed_[i] == UINT64_MAX)
                return true;
        }
        return false;
    };
    processEventsAt(time_);
    while (pending()) {
        uint64_t ev = nextEventAfter(time_);
        if (ev == UINT64_MAX)
            fatal("runWatches: a watched stream will never transfer");
        progressTo(ev);
        processEventsAt(ev);
    }
}

uint64_t
TransferEngine::watchedArrival(int stream) const
{
    auto si = static_cast<size_t>(stream);
    NSE_ASSERT(si < streams_.size(), "bad stream id ", stream);
    return watchCrossed_[si];
}

uint64_t
TransferEngine::finishAll()
{
    processEventsAt(time_);
    while (!allDone()) {
        uint64_t ev = nextEventAfter(time_);
        if (ev == UINT64_MAX)
            fatal("finishAll with streams that will never start");
        progressTo(ev);
        processEventsAt(ev);
    }
    return time_;
}

} // namespace nse
