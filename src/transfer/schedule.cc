#include "transfer/schedule.h"

#include <algorithm>

#include "bytecode/instruction.h"
#include "support/error.h"
#include "support/saturate.h"
#include "transfer/engine.h"

namespace nse
{

StreamDemand
deriveStreamDemand(const Program &, const FirstUseOrder &order,
                   const TransferLayout &layout,
                   const std::vector<uint64_t> &method_cycles)
{
    NSE_CHECK(method_cycles.size() == order.order.size(),
              "method cycle predictions must parallel the ordering");

    size_t n = layout.streams.size();
    StreamDemand demand;
    demand.prefixBytes.assign(n, 0);
    demand.deadline.assign(n, UINT64_MAX);
    demand.deps.resize(n);

    // Byte high-water per stream as the first-use order unfolds.
    std::vector<uint64_t> highwater(n, 0);
    std::vector<bool> seen(n, false);
    for (size_t i = 0; i < order.order.size(); ++i) {
        const MethodPlacement &pl = layout.of(order.order[i]);
        auto s = static_cast<size_t>(pl.streamIdx);
        if (!seen[s]) {
            seen[s] = true;
            demand.streamOrder.push_back(pl.streamIdx);
            demand.prefixBytes[s] = pl.availOffset;
            demand.deadline[s] = method_cycles[i];
            for (int d : demand.streamOrder) {
                auto di = static_cast<size_t>(d);
                if (di != s && highwater[di] > 0)
                    demand.deps[s].emplace_back(d, highwater[di]);
            }
        }
        highwater[s] = std::max(highwater[s], pl.availOffset);
    }
    NSE_ASSERT(demand.streamOrder.size() == n,
               "ordering does not touch every stream");
    return demand;
}

std::vector<uint64_t>
staticFirstUseCycles(const Program &prog, const FirstUseOrder &order)
{
    std::vector<uint64_t> cycles;
    cycles.reserve(order.order.size());
    uint64_t acc = 0;
    for (size_t i = 0; i < order.order.size(); ++i) {
        // A method's predicted first use is after all code placed
        // before it has (statically) executed once; never-used
        // appendices get no deadline.
        cycles.push_back(i < order.usedCount ? acc : UINT64_MAX);
        const MethodInfo &m = prog.method(order.order[i]);
        if (!m.isNative()) {
            for (const Instruction &inst : decodeCode(m.code))
                acc += opcodeInfo(inst.op).cycleCost;
        }
    }
    return cycles;
}

namespace
{

/**
 * Greedy scheduler working state: places one class at a time in
 * first-use order, maintaining per-placed-class *commitments* — the
 * latest acceptable arrival of each placed class's needed prefix
 * (its deadline when it meets it, otherwise the arrival it achieved
 * when placed). A later class may soak up slack but may never push an
 * earlier class past its commitment; in particular nothing may delay
 * the entry class's prefix, whose deadline is cycle 0.
 */
class GreedyPlacer
{
  public:
    GreedyPlacer(const TransferLayout &layout, const StreamDemand &demand,
                 const LinkModel &link, int limit)
        : layout_(layout), demand_(demand), link_(link), limit_(limit)
    {
        starts_.assign(layout.streams.size(), UINT64_MAX);
        commitment_.assign(layout.streams.size(), UINT64_MAX);
    }

    TransferSchedule
    run()
    {
        bool first = true;
        for (int s : demand_.streamOrder) {
            if (first) {
                // The entry class leads the transfer (paper §3: the
                // class containing main transfers first).
                place(s, 0);
                first = false;
            } else {
                place(s, chooseStart(s));
            }
        }
        TransferSchedule schedule;
        schedule.startCycle = starts_;
        return schedule;
    }

  private:
    /** Prefix arrivals of all placed streams plus `extra` (or -1). */
    std::vector<uint64_t>
    simulateArrivals(int extra, uint64_t extra_start)
    {
        TransferEngine engine(link_.cyclesPerByte, limit_);
        std::vector<int> watched;
        for (size_t i = 0; i < layout_.streams.size(); ++i) {
            engine.addStream(layout_.streams[i].name,
                             layout_.streams[i].totalBytes);
            uint64_t start = starts_[i];
            if (extra == static_cast<int>(i))
                start = extra_start;
            if (start != UINT64_MAX) {
                engine.scheduleStart(static_cast<int>(i), start);
                engine.setWatch(static_cast<int>(i),
                                demand_.prefixBytes[i]);
                watched.push_back(static_cast<int>(i));
            }
        }
        engine.runWatches();
        std::vector<uint64_t> arrivals(layout_.streams.size(),
                                       UINT64_MAX);
        for (int w : watched)
            arrivals[static_cast<size_t>(w)] = engine.watchedArrival(w);
        return arrivals;
    }

    /** True when no placed stream is pushed past its commitment. */
    bool
    commitmentsHold(const std::vector<uint64_t> &arrivals) const
    {
        for (size_t i = 0; i < arrivals.size(); ++i) {
            if (commitment_[i] != UINT64_MAX &&
                arrivals[i] > commitment_[i]) {
                return false;
            }
        }
        return true;
    }

    /**
     * Dependency trigger (paper's runtime rule): the cycle at which
     * every earlier class has delivered the bytes this class needs
     * before its first use.
     */
    uint64_t
    trigger(int s)
    {
        TransferEngine engine(link_.cyclesPerByte, limit_);
        for (size_t i = 0; i < layout_.streams.size(); ++i) {
            engine.addStream(layout_.streams[i].name,
                             layout_.streams[i].totalBytes);
            if (starts_[i] != UINT64_MAX)
                engine.scheduleStart(static_cast<int>(i), starts_[i]);
        }
        uint64_t t = 0;
        for (auto &[d, bytes] : demand_.deps[static_cast<size_t>(s)])
            t = engine.waitFor(d, bytes, t);
        return t;
    }

    uint64_t
    chooseStart(int s)
    {
        auto si = static_cast<size_t>(s);
        uint64_t deadline = demand_.deadline[si];
        uint64_t trig = trigger(s);

        // Two monotone constraints pull in opposite directions:
        // meeting this class's own deadline favours *early* starts,
        // while not disturbing placed classes' commitments favours
        // *late* starts — the feasible region is an interval.
        auto safe = [&](uint64_t start) {
            return commitmentsHold(simulateArrivals(s, start));
        };
        auto meets_deadline = [&](uint64_t start) {
            return simulateArrivals(s, start)[si] <= deadline;
        };

        // Fallback: the earliest commitment-safe start at or after
        // the trigger (starting later only ever helps the others).
        uint64_t safe_after_trigger = trig;
        if (!safe(trig)) {
            uint64_t lo = trig;
            // Past the last commitment window everything is safe.
            uint64_t hi = satAdd(trig, 1);
            for (uint64_t c : commitment_)
                if (c != UINT64_MAX)
                    hi = std::max(hi, satAdd(c, 1));
            while (lo < hi) {
                uint64_t mid = lo + (hi - lo) / 2;
                if (safe(mid))
                    hi = mid;
                else
                    lo = mid + 1;
            }
            safe_after_trigger = lo;
        }

        if (deadline == UINT64_MAX)
            return safe_after_trigger;

        // Eager start per the paper's runtime trigger rule, when it
        // breaks nothing and still meets the deadline.
        if (safe(trig) && meets_deadline(trig))
            return trig;

        // Deadline pull-in (the paper's Figure 4: B starts before A
        // when that is the only way Bar_B arrives in time): the
        // latest deadline-meeting start; accept it when it is also
        // commitment-safe (the upper end of the feasible interval).
        if (meets_deadline(0)) {
            uint64_t lo = 0;
            uint64_t hi = deadline;
            while (lo < hi) {
                uint64_t mid = lo + (hi - lo + 1) / 2;
                if (meets_deadline(mid))
                    lo = mid;
                else
                    hi = mid - 1;
            }
            if (safe(lo))
                return lo;
        }
        return safe_after_trigger;
    }

    void
    place(int s, uint64_t start)
    {
        auto si = static_cast<size_t>(s);
        starts_[si] = start;
        std::vector<uint64_t> arrivals = simulateArrivals(-1, 0);
        uint64_t deadline = demand_.deadline[si];
        // Achieved arrivals get 10% slack: a later urgent class may
        // overlap this one a little (the paper's Figure 4, where B
        // starts before A finishes) but may not materially delay it.
        // Saturating: a placed stream whose prefix lands near the end
        // of the cycle range (a never-finishing stream on an absurdly
        // slow link) must commit to "never", not wrap to "now".
        uint64_t achieved = satAdd(arrivals[si], arrivals[si] / 10);
        commitment_[si] = (deadline == UINT64_MAX)
                              ? achieved
                              : std::max(deadline, achieved);
    }

    const TransferLayout &layout_;
    const StreamDemand &demand_;
    const LinkModel &link_;
    int limit_;
    std::vector<uint64_t> starts_;
    std::vector<uint64_t> commitment_;
};

} // namespace

TransferSchedule
buildGreedySchedule(const TransferLayout &layout,
                    const StreamDemand &demand, const LinkModel &link,
                    int limit, const FaultPlan *faults)
{
    // Planning is nominal by contract (see header): the placer's
    // internal engines use the bare link model even when the run will
    // be evaluated under `faults`.
    (void)faults;
    GreedyPlacer placer(layout, demand, link, limit);
    return placer.run();
}

} // namespace nse
