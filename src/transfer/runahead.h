/**
 * @file
 * Online runahead transfer scheduling (ROADMAP: "Runahead transfer
 * scheduling"; grounded in runahead execution — when stalled, look
 * ahead to discover future misses).
 *
 * The static greedy schedule (transfer/schedule.h) fixes every
 * stream's start cycle before the run; one misprediction leaves the
 * rest of the plan wrong for the whole run. The runahead scheduler
 * adapts the plan *online*: each time the replay executor stalls on a
 * method wait, it runs ahead in the client's recorded ExecTrace —
 * bounded by the RTA call graph for paths the trace window does not
 * reach — to predict the next k first-uses, then reorders the
 * remaining (idle) transfer units through TransferEngine::reschedule:
 *
 *  - predicted streams whose needed prefix has not arrived are
 *    *promoted* (start now, behind any in-flight demand fetch);
 *  - unpredicted idle streams whose planned start falls inside the
 *    speculation window are *deferred* to the window's end, freeing
 *    shared bandwidth for the streams execution will actually touch.
 *
 * Safety: only Idle streams are re-planned (the engine hook enforces
 * the bytes-already-sent invariant), every stream used inside the
 * speculation window is protected from deferral (the window end is a
 * lower bound on its use cycle, since stalls only push first uses
 * later), and a deferred stream that *is* used early is recovered by
 * the ordinary misprediction demand fetch. The speculative expansion
 * never promotes a method the RTA analysis proves unreachable, so
 * speculation stays inside the auditor's safety envelope.
 */

#ifndef NSE_TRANSFER_RUNAHEAD_H
#define NSE_TRANSFER_RUNAHEAD_H

#include <cstdint>
#include <vector>

#include "obs/event.h"
#include "transfer/engine.h"

namespace nse
{

struct ExecTrace;
struct TransferLayout;
class CallGraph;

/** Runahead knobs; depth == 0 disables the scheduler entirely. */
struct RunaheadConfig
{
    /** Trace events to look ahead past the stalled one. */
    uint32_t depth = 0;
    /** Max distinct streams promoted per stall. */
    uint32_t k = 4;
};

struct RunaheadStats
{
    uint64_t stallsInspected = 0;
    uint64_t promotions = 0;
    uint64_t deferrals = 0;
};

/**
 * Per-client online scheduler. Construct once per replay (it scales
 * its scratch state to the layout) and call onStall() at every
 * first-use wait whose bytes have not arrived. `cg` may be null
 * (no speculative expansion beyond the trace window, no RTA bound —
 * used only by tests); `obs` may be null.
 */
class RunaheadScheduler
{
  public:
    RunaheadScheduler(const ExecTrace &trace, const TransferLayout &layout,
                      const CallGraph *cg, RunaheadConfig cfg);

    /**
     * React to a misprediction stall: the replay is blocked on trace
     * event `eventIdx` at cycle `clock` (the engine has been advanced
     * to `clock`) and a demand fetch for the blocked stream was just
     * issued. Promotes / defers idle streams as described above and
     * emits RunaheadPromote / RunaheadDefer events to `obs`.
     *
     * Call this only for misprediction stalls, never for ordinary
     * bandwidth waits on an in-flight transfer. A misprediction proves
     * the static plan downstream of this point stale, so reordering it
     * pays; on a correctly predicted stall the blocked stream is
     * already transferring, and promoting competitors would only steal
     * link share from the very bytes the program is waiting for
     * (measured: promoting on every stall inflates stall cycles by up
     * to 2.8x on well-trained orderings; gating on mispredictions
     * keeps mispredict-free runs bit-identical to the static
     * schedule).
     */
    void onStall(TransferEngine &engine, size_t eventIdx, uint64_t clock,
                 EventSink *obs);

    const RunaheadStats &stats() const { return stats_; }

  private:
    const ExecTrace *trace_;
    const TransferLayout *layout_;
    const CallGraph *cg_;
    RunaheadConfig cfg_;
    RunaheadStats stats_;

    /** Scratch, reused across stalls: per-stream "seen in window". */
    std::vector<uint8_t> mark_;
    /** Streams to promote, in predicted first-use order. */
    std::vector<int> predicted_;
};

} // namespace nse

#endif // NSE_TRANSFER_RUNAHEAD_H
