/**
 * @file
 * Network link models.
 *
 * The paper evaluates two links for a 500 MHz Alpha: a T1 line
 * (~1 Mbit/s, 3,815 cycles per byte) and a 28.8 Kbaud modem
 * (134,698 cycles per byte). We use the paper's exact cycles/byte.
 */

#ifndef NSE_TRANSFER_LINK_H
#define NSE_TRANSFER_LINK_H

#include <cmath>
#include <cstdint>

namespace nse
{

/** A constant-bandwidth link expressed in CPU cycles per byte. */
struct LinkModel
{
    const char *name;
    double cyclesPerByte;
};

/** Cycles to move `bytes` over the nominal link, rounded up. */
inline uint64_t
transferCost(uint64_t bytes, const LinkModel &link)
{
    return static_cast<uint64_t>(
        std::ceil(static_cast<double>(bytes) * link.cyclesPerByte));
}

/** T1 link (1 Mbit/s at 500 MHz). */
inline constexpr LinkModel kT1Link{"T1", 3815.0};

/** 28.8 Kbaud modem link. */
inline constexpr LinkModel kModemLink{"Modem", 134698.0};

} // namespace nse

#endif // NSE_TRANSFER_LINK_H
