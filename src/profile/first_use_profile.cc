#include "profile/first_use_profile.h"

#include "classfile/writer.h"
#include "support/error.h"

namespace nse
{

const MethodProfile &
FirstUseProfile::of(MethodId id) const
{
    static const MethodProfile kEmpty;
    auto it = methods.find(id);
    return it == methods.end() ? kEmpty : it->second;
}

double
FirstUseProfile::executedInstrFraction(const Program &prog) const
{
    uint64_t executed = 0;
    for (auto &[id, mp] : methods)
        executed += mp.uniqueInstrs;
    ProgramStatics stats = collectStatics(prog);
    return stats.staticInstrs
               ? static_cast<double>(executed) /
                     static_cast<double>(stats.staticInstrs)
               : 0.0;
}

FirstUseProfile
profileRun(const Program &prog, const NativeRegistry &natives,
           std::vector<int64_t> input, const DecodedCache *decoded)
{
    FirstUseProfile profile;
    // The hook runs once per executed bytecode, so its bookkeeping is
    // the profiler's hot path. Instructions overwhelmingly repeat the
    // previous instruction's method, and byte offsets are small and
    // dense, so a one-entry method memo plus a per-method offset
    // bitmap replaces two map lookups per bytecode with two array
    // indexes.
    std::map<MethodId, std::vector<uint8_t>> offsets_seen;
    MethodId last_id;
    MethodProfile *last_mp = nullptr;
    std::vector<uint8_t> *last_seen = nullptr;

    Vm vm(prog, natives, std::move(input), {}, decoded);
    vm.setFirstUseHook([&](MethodId id, uint64_t clock) {
        profile.order.push_back(id);
        profile.firstUseClock.push_back(clock);
        profile.methods[id].firstUseClock = clock;
        return clock;
    });
    vm.setInstructionHook(
        [&](MethodId id, const Instruction &inst, uint64_t) {
            if (!last_mp || !(id == last_id)) {
                last_id = id;
                last_mp = &profile.methods[id];
                last_seen = &offsets_seen[id];
            }
            ++last_mp->dynamicInstrs;
            std::vector<uint8_t> &seen = *last_seen;
            if (inst.offset >= seen.size())
                seen.resize(inst.offset + 1, 0);
            uint8_t &flag = seen[inst.offset];
            if (!flag) {
                flag = 1;
                ++last_mp->uniqueInstrs;
                last_mp->uniqueBytes += inst.size();
            }
        });

    profile.result = vm.run();
    return profile;
}

ProgramStatics
collectStatics(const Program &prog)
{
    ProgramStatics stats;
    stats.classFiles = prog.classCount();
    stats.methods = prog.methodCount();
    for (uint16_t c = 0; c < prog.classCount(); ++c) {
        const ClassFile &cf = prog.classAt(c);
        stats.totalBytes += layoutOf(cf).totalSize;
        for (const MethodInfo &m : cf.methods) {
            if (m.isNative())
                continue;
            stats.staticInstrs += decodeCode(m.code).size();
        }
    }
    return stats;
}

} // namespace nse
