#include "profile/first_use_profile.h"

#include <set>

#include "classfile/writer.h"
#include "support/error.h"

namespace nse
{

const MethodProfile &
FirstUseProfile::of(MethodId id) const
{
    static const MethodProfile kEmpty;
    auto it = methods.find(id);
    return it == methods.end() ? kEmpty : it->second;
}

double
FirstUseProfile::executedInstrFraction(const Program &prog) const
{
    uint64_t executed = 0;
    for (auto &[id, mp] : methods)
        executed += mp.uniqueInstrs;
    ProgramStatics stats = collectStatics(prog);
    return stats.staticInstrs
               ? static_cast<double>(executed) /
                     static_cast<double>(stats.staticInstrs)
               : 0.0;
}

FirstUseProfile
profileRun(const Program &prog, const NativeRegistry &natives,
           std::vector<int64_t> input)
{
    FirstUseProfile profile;
    std::map<MethodId, std::set<uint32_t>> offsets_seen;

    Vm vm(prog, natives, std::move(input));
    vm.setFirstUseHook([&](MethodId id, uint64_t clock) {
        profile.order.push_back(id);
        profile.firstUseClock.push_back(clock);
        profile.methods[id].firstUseClock = clock;
        return clock;
    });
    vm.setInstructionHook(
        [&](MethodId id, const Instruction &inst, uint64_t) {
            MethodProfile &mp = profile.methods[id];
            ++mp.dynamicInstrs;
            if (offsets_seen[id].insert(inst.offset).second) {
                ++mp.uniqueInstrs;
                mp.uniqueBytes += inst.size();
            }
        });

    profile.result = vm.run();
    return profile;
}

ProgramStatics
collectStatics(const Program &prog)
{
    ProgramStatics stats;
    stats.classFiles = prog.classCount();
    stats.methods = prog.methodCount();
    for (uint16_t c = 0; c < prog.classCount(); ++c) {
        const ClassFile &cf = prog.classAt(c);
        stats.totalBytes += layoutOf(cf).totalSize;
        for (const MethodInfo &m : cf.methods) {
            if (m.isNative())
                continue;
            stats.staticInstrs += decodeCode(m.code).size();
        }
    }
    return stats;
}

} // namespace nse
