/**
 * @file
 * First-use profiling (paper §4.2) and program statistics.
 *
 * A first-use profile is gathered by instrumenting an execution (the
 * paper used BIT; we hook the interpreter): it records the order in
 * which methods are first invoked, the cycle at which each first use
 * happened, per-method dynamic instruction counts, and per-method
 * *unique* executed bytes (distinct instructions executed, in bytes) —
 * the quantity the profile-driven transfer scheduler accumulates.
 */

#ifndef NSE_PROFILE_FIRST_USE_PROFILE_H
#define NSE_PROFILE_FIRST_USE_PROFILE_H

#include <map>
#include <vector>

#include "program/program.h"
#include "vm/interpreter.h"

namespace nse
{

/** Per-method dynamic execution record. */
struct MethodProfile
{
    /** Clock at first invocation; UINT64_MAX = never executed. */
    uint64_t firstUseClock = UINT64_MAX;
    uint64_t dynamicInstrs = 0;
    /** Distinct static instructions executed. */
    uint64_t uniqueInstrs = 0;
    /** Bytes of those distinct instructions. */
    uint64_t uniqueBytes = 0;

    bool executed() const { return firstUseClock != UINT64_MAX; }
};

/** Result of one profiled run. */
struct FirstUseProfile
{
    /** Observed first-use order (executed methods only). */
    std::vector<MethodId> order;
    /** Clock of each first use, parallel to `order`. */
    std::vector<uint64_t> firstUseClock;
    std::map<MethodId, MethodProfile> methods;
    VmResult result;

    const MethodProfile &of(MethodId id) const;
    /** Fraction of static instructions that executed (Table 2). */
    double executedInstrFraction(const Program &prog) const;
};

/**
 * Execute the program on `input`, collecting a first-use profile.
 * `decoded` optionally shares a decode cache (SimContext::decoded);
 * the profile is bit-identical with or without it.
 */
FirstUseProfile profileRun(const Program &prog,
                           const NativeRegistry &natives,
                           std::vector<int64_t> input,
                           const DecodedCache *decoded = nullptr);

/** Static program statistics (Table 2 inputs). */
struct ProgramStatics
{
    size_t classFiles = 0;
    size_t totalBytes = 0; ///< serialized size of all class files
    uint64_t staticInstrs = 0;
    size_t methods = 0;

    double
    instrsPerMethod() const
    {
        return methods ? static_cast<double>(staticInstrs) /
                             static_cast<double>(methods)
                       : 0.0;
    }
};

/** Collect static statistics for one program. */
ProgramStatics collectStatics(const Program &prog);

} // namespace nse

#endif // NSE_PROFILE_FIRST_USE_PROFILE_H
