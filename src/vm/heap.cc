#include "vm/heap.h"

namespace nse
{

Heap::Heap()
{
    // Slot 0 is the null handle.
    objects_.push_back(HeapObject{});
}

Ref
Heap::allocInstance(uint16_t class_idx, size_t n_fields)
{
    HeapObject obj;
    obj.kind = ObjKind::Instance;
    obj.classIdx = class_idx;
    obj.slots.assign(n_fields, Value::makeInt(0));
    objects_.push_back(std::move(obj));
    return static_cast<Ref>(objects_.size() - 1);
}

Ref
Heap::allocIntArray(size_t length)
{
    HeapObject obj;
    obj.kind = ObjKind::IntArray;
    obj.slots.assign(length, Value::makeInt(0));
    objects_.push_back(std::move(obj));
    return static_cast<Ref>(objects_.size() - 1);
}

Ref
Heap::allocRefArray(size_t length)
{
    HeapObject obj;
    obj.kind = ObjKind::RefArray;
    obj.slots.assign(length, Value::makeNull());
    objects_.push_back(std::move(obj));
    return static_cast<Ref>(objects_.size() - 1);
}

HeapObject &
Heap::deref(Ref ref)
{
    if (ref == kNullRef)
        fatal("null dereference");
    if (ref >= objects_.size())
        fatal("dangling heap handle: ", ref);
    return objects_[ref];
}

const HeapObject &
Heap::deref(Ref ref) const
{
    if (ref == kNullRef)
        fatal("null dereference");
    if (ref >= objects_.size())
        fatal("dangling heap handle: ", ref);
    return objects_[ref];
}

const HeapObject &
Heap::checkedArray(Ref ref, int64_t index) const
{
    const HeapObject &obj = deref(ref);
    if (obj.kind == ObjKind::Instance)
        fatal("array access on a non-array object");
    if (index < 0 || static_cast<size_t>(index) >= obj.slots.size()) {
        fatal("array index out of bounds: ", index, " of ",
              obj.slots.size());
    }
    return obj;
}

Value
Heap::arrayGet(Ref ref, int64_t index) const
{
    return checkedArray(ref, index).slots[static_cast<size_t>(index)];
}

void
Heap::arraySet(Ref ref, int64_t index, Value v)
{
    const HeapObject &obj = checkedArray(ref, index);
    bool want_int = obj.kind == ObjKind::IntArray;
    if (want_int != v.isInt())
        fatal("array element kind mismatch");
    const_cast<HeapObject &>(obj).slots[static_cast<size_t>(index)] = v;
}

int64_t
Heap::arrayLength(Ref ref) const
{
    const HeapObject &obj = deref(ref);
    if (obj.kind == ObjKind::Instance)
        fatal("arraylength on a non-array object");
    return static_cast<int64_t>(obj.slots.size());
}

} // namespace nse
