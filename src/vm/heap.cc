#include "vm/heap.h"

namespace nse
{

Heap::Heap()
{
    // Slot 0 is the null handle.
    objects_.push_back(HeapObject{});
}

Ref
Heap::allocInstance(uint16_t class_idx, size_t n_fields)
{
    HeapObject obj;
    obj.kind = ObjKind::Instance;
    obj.classIdx = class_idx;
    obj.slots.assign(n_fields, Value::makeInt(0));
    objects_.push_back(std::move(obj));
    return static_cast<Ref>(objects_.size() - 1);
}

Ref
Heap::allocIntArray(size_t length)
{
    HeapObject obj;
    obj.kind = ObjKind::IntArray;
    obj.slots.assign(length, Value::makeInt(0));
    objects_.push_back(std::move(obj));
    return static_cast<Ref>(objects_.size() - 1);
}

Ref
Heap::allocRefArray(size_t length)
{
    HeapObject obj;
    obj.kind = ObjKind::RefArray;
    obj.slots.assign(length, Value::makeNull());
    objects_.push_back(std::move(obj));
    return static_cast<Ref>(objects_.size() - 1);
}

} // namespace nse
