#include "vm/interpreter.h"

#include "support/error.h"

// Computed-goto direct threading needs the GNU address-of-label
// extension; NSE_FORCE_SWITCH_DISPATCH compiles it out so the
// portable switch loop can be differentially tested on any compiler.
#if !defined(NSE_FORCE_SWITCH_DISPATCH) &&                              \
    (defined(__GNUC__) || defined(__clang__))
#define NSE_THREADED_DISPATCH 1
#else
#define NSE_THREADED_DISPATCH 0
#endif

namespace nse
{

namespace
{

// VM integer arithmetic wraps (two's complement, like JVM iadd/imul);
// signed overflow is undefined in C++, so wrap in unsigned space.
int64_t
wrapAdd(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                static_cast<uint64_t>(b));
}

int64_t
wrapSub(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                static_cast<uint64_t>(b));
}

int64_t
wrapMul(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) *
                                static_cast<uint64_t>(b));
}

int64_t
wrapNeg(int64_t a)
{
    return static_cast<int64_t>(0 - static_cast<uint64_t>(a));
}

} // namespace

Vm::Vm(const Program &prog, const NativeRegistry &natives,
       std::vector<int64_t> input, VmOptions opts,
       const DecodedCache *decoded)
    : prog_(prog), natives_(natives), input_(std::move(input)),
      opts_(opts), verifier_(prog), linker_(prog)
{
    linker_.prepareAll();
    methodBase_.resize(prog_.classCount());
    uint32_t total = 0;
    for (uint16_t c = 0; c < prog_.classCount(); ++c) {
        methodBase_[c] = total;
        total += static_cast<uint32_t>(prog_.classAt(c).methods.size());
    }
    seen_.assign(total, 0);
    // A shared cache decoded with a different delimiter cost carries
    // different baked-in branch costs; fall back to a private decode.
    if (decoded &&
        decoded->blockDelimiterCost() == opts_.blockDelimiterCost)
        decoded_ = decoded;
}

void
Vm::charge(uint64_t cycles)
{
    result_.clock += cycles;
    result_.execCycles += cycles;
}

void
Vm::noteFirstUse(MethodId id)
{
    uint8_t &flag = seen_[denseIndex(id)];
    if (flag)
        return;
    flag = 1;
    ++seenCount_;
    if (firstUse_) {
        uint64_t advanced = firstUse_(id, result_.clock);
        NSE_ASSERT(advanced >= result_.clock,
                   "first-use hook moved the clock backwards");
        result_.clock = advanced;
    }
}

const VerifiedMethod &
Vm::codeOf(MethodId id)
{
    auto it = codeCache_.find(id);
    if (it == codeCache_.end()) {
        // Step-3 verification happens the first time a method is about
        // to run (in a non-strict loader: right after it transfers).
        it = codeCache_.emplace(id, verifier_.verifyMethod(id)).first;
    }
    return it->second;
}

void
Vm::pushFrame(MethodId id, std::vector<Value> args)
{
    noteFirstUse(id);
    const MethodInfo &m = prog_.method(id);
    Frame f;
    f.id = id;
    f.code = &codeOf(id);
    f.locals.assign(m.maxLocals, Value::makeInt(0));
    NSE_ASSERT(args.size() <= m.maxLocals, "argument overflow in ",
               prog_.methodLabel(id));
    for (size_t i = 0; i < args.size(); ++i)
        f.locals[i] = args[i];
    f.stack.reserve(f.code->maxStack);
    frames_.push_back(std::move(f));
}

Value
Vm::popVal(Frame &f)
{
    NSE_ASSERT(!f.stack.empty(), "operand stack underflow at runtime");
    Value v = f.stack.back();
    f.stack.pop_back();
    return v;
}

int64_t
Vm::popInt(Frame &f)
{
    return popVal(f).asInt();
}

Ref
Vm::popRef(Frame &f)
{
    return popVal(f).asRef();
}

void
Vm::push(Frame &f, Value v)
{
    f.stack.push_back(v);
}

Ref
Vm::internString(uint16_t class_idx, uint16_t cp_idx)
{
    auto key = std::make_pair(class_idx, cp_idx);
    auto it = stringCache_.find(key);
    if (it != stringCache_.end())
        return it->second;
    const ClassFile &cf = prog_.classAt(class_idx);
    const CpEntry &e = cf.cpool.at(cp_idx, CpTag::String);
    const std::string &s = cf.cpool.utf8At(e.ref1);
    Ref arr = heap_.allocIntArray(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
        heap_.arraySet(arr, static_cast<int64_t>(i),
                       Value::makeInt(static_cast<uint8_t>(s[i])));
    }
    stringCache_.emplace(key, arr);
    return arr;
}

void
Vm::callNative(MethodId id, std::vector<Value> args, Frame *caller)
{
    noteFirstUse(id);
    const ClassFile &cf = prog_.classAt(id.classIdx);
    const MethodInfo &m = prog_.method(id);
    std::string qualified = cat(cf.name(), ".", cf.methodName(m));
    const NativeMethod &native = natives_.lookup(qualified);
    charge(native.cycleCost);
    ++result_.nativeCalls;
    NativeContext ctx{heap_, result_.output, input_};
    Value ret = native.fn(ctx, args);
    MethodSig sig = parseMethodDescriptor(cf.methodDescriptor(m));
    if (sig.ret != TypeKind::Void) {
        NSE_ASSERT(caller, "native with return value at program entry");
        push(*caller, sig.ret == TypeKind::Int
                          ? Value::makeInt(ret.asInt())
                          : Value::makeRef(ret.asRef()));
    }
}

void
Vm::invoke(Frame &f, const Instruction &inst, bool is_virtual)
{
    const CallRef &ref = linker_.resolveCall(
        f.id.classIdx, static_cast<uint16_t>(inst.operand));

    size_t n_params = ref.sig.params.size();
    size_t n_args = n_params + (is_virtual ? 1 : 0);
    std::vector<Value> args(n_args);
    for (size_t i = 0; i < n_params; ++i)
        args[n_args - 1 - i] = popVal(f);

    MethodId target;
    if (is_virtual) {
        Ref receiver = popRef(f);
        if (receiver == kNullRef)
            fatal("null receiver calling ", ref.className, ".", ref.name);
        args[0] = Value::makeRef(receiver);
        target =
            linker_.virtualTarget(heap_.deref(receiver).classIdx, ref);
    } else {
        target = linker_.staticTarget(ref);
    }

    const MethodInfo &m = prog_.method(target);
    if (m.isNative()) {
        NSE_CHECK(!is_virtual, "virtual dispatch to native method ",
                  prog_.methodLabel(target));
        callNative(target, std::move(args), &f);
    } else {
        pushFrame(target, std::move(args));
    }
}

void
Vm::step()
{
    Frame &f = frames_.back();
    NSE_ASSERT(f.pc < f.code->insts.size(), "pc past method end in ",
               prog_.methodLabel(f.id));
    const Instruction &inst = f.code->insts[f.pc];

    charge(opcodeInfo(inst.op).cycleCost);
    if (opts_.blockDelimiterCost &&
        (isBranch(inst.op) || isReturn(inst.op))) {
        charge(opts_.blockDelimiterCost);
    }
    ++result_.bytecodes;
    if (instr_)
        instr_(f.id, inst, result_.clock);

    size_t next_pc = f.pc + 1;
    auto branch = [&](bool taken) {
        if (taken)
            next_pc = f.code->indexOf(static_cast<uint32_t>(inst.operand));
    };

    switch (inst.op) {
      case Opcode::NOP:
        break;
      case Opcode::PUSH_I8:
      case Opcode::PUSH_I32:
        push(f, Value::makeInt(inst.operand));
        break;
      case Opcode::LDC: {
        auto idx = static_cast<uint16_t>(inst.operand);
        const CpEntry &e = prog_.classAt(f.id.classIdx).cpool.at(idx);
        if (e.tag == CpTag::Integer)
            push(f, Value::makeInt(e.value));
        else
            push(f, Value::makeRef(internString(f.id.classIdx, idx)));
        break;
      }
      case Opcode::ACONST_NULL:
        push(f, Value::makeNull());
        break;
      case Opcode::ILOAD:
      case Opcode::ALOAD:
        push(f, f.locals[static_cast<size_t>(inst.operand)]);
        break;
      case Opcode::ISTORE:
      case Opcode::ASTORE:
        f.locals[static_cast<size_t>(inst.operand)] = popVal(f);
        break;
      case Opcode::POP:
        popVal(f);
        break;
      case Opcode::DUP: {
        Value v = popVal(f);
        push(f, v);
        push(f, v);
        break;
      }
      case Opcode::DUP_X1: {
        Value a = popVal(f);
        Value b = popVal(f);
        push(f, a);
        push(f, b);
        push(f, a);
        break;
      }
      case Opcode::SWAP: {
        Value a = popVal(f);
        Value b = popVal(f);
        push(f, a);
        push(f, b);
        break;
      }
      case Opcode::IADD: {
        int64_t b = popInt(f), a = popInt(f);
        push(f, Value::makeInt(wrapAdd(a, b)));
        break;
      }
      case Opcode::ISUB: {
        int64_t b = popInt(f), a = popInt(f);
        push(f, Value::makeInt(wrapSub(a, b)));
        break;
      }
      case Opcode::IMUL: {
        int64_t b = popInt(f), a = popInt(f);
        push(f, Value::makeInt(wrapMul(a, b)));
        break;
      }
      case Opcode::IDIV: {
        int64_t b = popInt(f), a = popInt(f);
        if (b == 0)
            fatal("division by zero in ", prog_.methodLabel(f.id));
        // INT64_MIN / -1 overflows; it wraps back to INT64_MIN.
        push(f, Value::makeInt(b == -1 ? wrapNeg(a) : a / b));
        break;
      }
      case Opcode::IREM: {
        int64_t b = popInt(f), a = popInt(f);
        if (b == 0)
            fatal("remainder by zero in ", prog_.methodLabel(f.id));
        push(f, Value::makeInt(b == -1 ? 0 : a % b));
        break;
      }
      case Opcode::INEG:
        push(f, Value::makeInt(wrapNeg(popInt(f))));
        break;
      case Opcode::ISHL: {
        int64_t b = popInt(f), a = popInt(f);
        push(f, Value::makeInt(static_cast<int64_t>(
                    static_cast<uint64_t>(a) << (b & 63))));
        break;
      }
      case Opcode::ISHR: {
        int64_t b = popInt(f), a = popInt(f);
        push(f, Value::makeInt(a >> (b & 63)));
        break;
      }
      case Opcode::IUSHR: {
        int64_t b = popInt(f), a = popInt(f);
        push(f, Value::makeInt(static_cast<int64_t>(
                    static_cast<uint64_t>(a) >> (b & 63))));
        break;
      }
      case Opcode::IAND: {
        int64_t b = popInt(f), a = popInt(f);
        push(f, Value::makeInt(a & b));
        break;
      }
      case Opcode::IOR: {
        int64_t b = popInt(f), a = popInt(f);
        push(f, Value::makeInt(a | b));
        break;
      }
      case Opcode::IXOR: {
        int64_t b = popInt(f), a = popInt(f);
        push(f, Value::makeInt(a ^ b));
        break;
      }
      case Opcode::IFEQ:
        branch(popInt(f) == 0);
        break;
      case Opcode::IFNE:
        branch(popInt(f) != 0);
        break;
      case Opcode::IFLT:
        branch(popInt(f) < 0);
        break;
      case Opcode::IFGE:
        branch(popInt(f) >= 0);
        break;
      case Opcode::IFGT:
        branch(popInt(f) > 0);
        break;
      case Opcode::IFLE:
        branch(popInt(f) <= 0);
        break;
      case Opcode::IF_ICMPEQ: {
        int64_t b = popInt(f), a = popInt(f);
        branch(a == b);
        break;
      }
      case Opcode::IF_ICMPNE: {
        int64_t b = popInt(f), a = popInt(f);
        branch(a != b);
        break;
      }
      case Opcode::IF_ICMPLT: {
        int64_t b = popInt(f), a = popInt(f);
        branch(a < b);
        break;
      }
      case Opcode::IF_ICMPGE: {
        int64_t b = popInt(f), a = popInt(f);
        branch(a >= b);
        break;
      }
      case Opcode::IF_ICMPGT: {
        int64_t b = popInt(f), a = popInt(f);
        branch(a > b);
        break;
      }
      case Opcode::IF_ICMPLE: {
        int64_t b = popInt(f), a = popInt(f);
        branch(a <= b);
        break;
      }
      case Opcode::IF_ACMPEQ: {
        Ref b = popRef(f), a = popRef(f);
        branch(a == b);
        break;
      }
      case Opcode::IF_ACMPNE: {
        Ref b = popRef(f), a = popRef(f);
        branch(a != b);
        break;
      }
      case Opcode::IFNULL:
        branch(popRef(f) == kNullRef);
        break;
      case Opcode::IFNONNULL:
        branch(popRef(f) != kNullRef);
        break;
      case Opcode::GOTO:
        branch(true);
        break;
      case Opcode::INVOKESTATIC:
        f.pc = next_pc;
        invoke(f, inst, false);
        return;
      case Opcode::INVOKEVIRTUAL:
        f.pc = next_pc;
        invoke(f, inst, true);
        return;
      case Opcode::RETURN:
        frames_.pop_back();
        return;
      case Opcode::IRETURN: {
        Value v = Value::makeInt(popInt(f));
        frames_.pop_back();
        if (!frames_.empty())
            push(frames_.back(), v);
        return;
      }
      case Opcode::ARETURN: {
        Value v = Value::makeRef(popRef(f));
        frames_.pop_back();
        if (!frames_.empty())
            push(frames_.back(), v);
        return;
      }
      case Opcode::NEW: {
        const ClassFile &cf = prog_.classAt(f.id.classIdx);
        const std::string &cls_name = cf.cpool.className(
            static_cast<uint16_t>(inst.operand));
        int cidx = prog_.classIndex(cls_name);
        if (cidx < 0)
            fatal("NEW of unknown class ", cls_name);
        push(f, Value::makeRef(heap_.allocInstance(
                    static_cast<uint16_t>(cidx),
                    linker_.instanceSlotCount(
                        static_cast<uint16_t>(cidx)))));
        break;
      }
      case Opcode::NEWARRAY: {
        int64_t len = popInt(f);
        if (len < 0)
            fatal("negative array length: ", len);
        push(f, Value::makeRef(
                    heap_.allocIntArray(static_cast<size_t>(len))));
        break;
      }
      case Opcode::ANEWARRAY: {
        int64_t len = popInt(f);
        if (len < 0)
            fatal("negative array length: ", len);
        push(f, Value::makeRef(
                    heap_.allocRefArray(static_cast<size_t>(len))));
        break;
      }
      case Opcode::IALOAD:
      case Opcode::AALOAD: {
        int64_t idx = popInt(f);
        Ref arr = popRef(f);
        push(f, heap_.arrayGet(arr, idx));
        break;
      }
      case Opcode::IASTORE: {
        int64_t v = popInt(f);
        int64_t idx = popInt(f);
        Ref arr = popRef(f);
        heap_.arraySet(arr, idx, Value::makeInt(v));
        break;
      }
      case Opcode::AASTORE: {
        Ref v = popRef(f);
        int64_t idx = popInt(f);
        Ref arr = popRef(f);
        heap_.arraySet(arr, idx, Value::makeRef(v));
        break;
      }
      case Opcode::ARRAYLENGTH:
        push(f, Value::makeInt(heap_.arrayLength(popRef(f))));
        break;
      case Opcode::GETSTATIC: {
        const FieldSlot &fs = linker_.resolveField(
            f.id.classIdx, static_cast<uint16_t>(inst.operand));
        NSE_CHECK(fs.isStatic, "GETSTATIC of instance field");
        push(f, linker_.getStatic(fs));
        break;
      }
      case Opcode::PUTSTATIC: {
        const FieldSlot &fs = linker_.resolveField(
            f.id.classIdx, static_cast<uint16_t>(inst.operand));
        NSE_CHECK(fs.isStatic, "PUTSTATIC of instance field");
        linker_.setStatic(fs, popVal(f));
        break;
      }
      case Opcode::GETFIELD: {
        const FieldSlot &fs = linker_.resolveField(
            f.id.classIdx, static_cast<uint16_t>(inst.operand));
        NSE_CHECK(!fs.isStatic, "GETFIELD of static field");
        Ref obj = popRef(f);
        push(f, heap_.deref(obj).slots.at(fs.slot));
        break;
      }
      case Opcode::PUTFIELD: {
        const FieldSlot &fs = linker_.resolveField(
            f.id.classIdx, static_cast<uint16_t>(inst.operand));
        NSE_CHECK(!fs.isStatic, "PUTFIELD of static field");
        Value v = popVal(f);
        Ref obj = popRef(f);
        heap_.deref(obj).slots.at(fs.slot) = v;
        break;
      }
    }

    f.pc = next_pc;
}

void
Vm::runClassic()
{
    pushFrame(prog_.entry(), {});
    while (!frames_.empty()) {
        if (result_.bytecodes >= opts_.maxBytecodes)
            fatal("bytecode budget exceeded (", opts_.maxBytecodes, ")");
        step();
    }
}

// ---------------------------------------------------------------------
// Decoded-IR execution: frames carry offsets into one Value arena,
// operands are inlined, costs pre-summed. The handler bodies live in
// exec_loop.inc and are compiled twice — once under computed-goto
// direct threading, once as a portable switch.
// ---------------------------------------------------------------------

void
Vm::pushDFrame(MethodId id, const DecodedMethod &dm, size_t args_off,
               uint32_t n_args)
{
    NSE_ASSERT(n_args <= dm.maxLocals, "argument overflow in ",
               prog_.methodLabel(id));
    size_t need =
        static_cast<size_t>(dm.maxLocals) + dm.verified.maxStack;
    if (arena_.size() < arenaTop_ + need)
        arena_.resize(std::max(arena_.size() * 2, arenaTop_ + need));
    Value *loc = arena_.data() + arenaTop_;
    const Value *args = arena_.data() + args_off;
    for (uint32_t i = 0; i < n_args; ++i)
        loc[i] = args[i];
    for (uint32_t i = n_args; i < dm.maxLocals; ++i)
        loc[i] = Value::makeInt(0);
    DFrame f;
    f.id = id;
    f.dm = &dm;
    f.code = instr_ ? dm.plain.data() : dm.fast.data();
    f.base = static_cast<uint32_t>(arenaTop_);
    f.stackBase = f.base + dm.maxLocals;
    arenaTop_ += need;
    dframes_.push_back(f);
}

void
Vm::doInvoke(uint16_t cp_idx, bool is_virtual)
{
    DFrame &f = dframes_.back();
    const CallRef &ref = linker_.resolveCall(f.id.classIdx, cp_idx);
    auto n_params = static_cast<uint32_t>(ref.sig.params.size());
    uint32_t n_args = n_params + (is_virtual ? 1u : 0u);
    // The args are the top n_args stack slots, already in call order.
    size_t args_off = f.stackBase + static_cast<size_t>(f.sp) - n_args;
    f.sp -= static_cast<int32_t>(n_args);

    MethodId target;
    if (is_virtual) {
        Ref receiver = arena_[args_off].ref;
        if (receiver == kNullRef)
            fatal("null receiver calling ", ref.className, ".",
                  ref.name);
        target =
            linker_.virtualTarget(heap_.deref(receiver).classIdx, ref);
    } else {
        target = linker_.staticTarget(ref);
    }

    Callee &ce = callees_[denseIndex(target)];
    if (!ce.known) {
        ce.isNative = prog_.method(target).isNative();
        ce.known = true;
    }
    if (!ce.isNative) {
        noteFirstUse(target);
        if (!ce.dm)
            ce.dm = &decoded_->get(target);
        pushDFrame(target, *ce.dm, args_off, n_args);
        return;
    }

    NSE_CHECK(!is_virtual, "virtual dispatch to native method ",
              prog_.methodLabel(target));
    noteFirstUse(target);
    if (!ce.native) {
        const ClassFile &cf = prog_.classAt(target.classIdx);
        const MethodInfo &m = prog_.method(target);
        ce.native =
            &natives_.lookup(cat(cf.name(), ".", cf.methodName(m)));
        ce.nativeRet =
            parseMethodDescriptor(cf.methodDescriptor(m)).ret;
    }
    charge(ce.native->cycleCost);
    ++result_.nativeCalls;
    std::vector<Value> args(
        arena_.begin() + static_cast<std::ptrdiff_t>(args_off),
        arena_.begin() + static_cast<std::ptrdiff_t>(args_off + n_args));
    NativeContext nctx{heap_, result_.output, input_};
    Value ret = ce.native->fn(nctx, args);
    if (ce.nativeRet != TypeKind::Void) {
        arena_[f.stackBase + static_cast<size_t>(f.sp)] =
            ce.nativeRet == TypeKind::Int ? Value::makeInt(ret.asInt())
                                          : Value::makeRef(ret.asRef());
        ++f.sp;
    }
}

// Execution registers shared by both compiled loops. The clock /
// exec-cycle / bytecode accumulators live in locals so the hot path
// never touches result_; VM_SAVE flushes them (and pc/sp) before
// anything that can observe result_ or move the frame stack, and
// VM_RELOAD refetches everything afterwards. VM_FETCH mirrors the
// classic run()/step() preamble exactly: budget check first, then
// charge the (pre-summed) cost, count the covered bytecodes, and fire
// the instruction hook (only ever set with the 1:1 plain stream).
/** Frame-register reload only; the accounting locals stay live. */
#define VM_POP_RELOAD()                                                 \
    do {                                                                \
        fr = &dframes_.back();                                          \
        code = fr->code;                                                \
        pc = fr->pc;                                                    \
        sp = fr->sp;                                                    \
        loc = arena_.data() + fr->base;                                 \
        stk = arena_.data() + fr->stackBase;                            \
    } while (0)

/** Spill the accounting locals into result_. */
#define VM_FLUSH()                                                      \
    do {                                                                \
        result_.clock = lclock;                                         \
        result_.execCycles = lexec;                                     \
        result_.bytecodes = lbc;                                        \
    } while (0)

#define VM_RELOAD()                                                     \
    do {                                                                \
        VM_POP_RELOAD();                                                \
        lclock = result_.clock;                                         \
        lexec = result_.execCycles;                                     \
        lbc = result_.bytecodes;                                        \
    } while (0)

#define VM_SAVE()                                                       \
    do {                                                                \
        fr->pc = pc;                                                    \
        fr->sp = sp;                                                    \
        VM_FLUSH();                                                     \
    } while (0)

#define VM_FETCH()                                                      \
    do {                                                                \
        if (lbc >= opts_.maxBytecodes) {                                \
            VM_SAVE();                                                  \
            fatal("bytecode budget exceeded (", opts_.maxBytecodes,     \
                  ")");                                                 \
        }                                                               \
        d = &code[pc];                                                  \
        ++pc;                                                           \
        lclock += d->cost;                                              \
        lexec += d->cost;                                               \
        lbc += d->count;                                                \
        if constexpr (kHooked) {                                        \
            result_.clock = lclock;                                     \
            result_.execCycles = lexec;                                 \
            result_.bytecodes = lbc;                                    \
            instr_(fr->id, fr->dm->verified.insts[pc - 1], lclock);     \
        }                                                               \
    } while (0)

#if NSE_THREADED_DISPATCH

template <bool kHooked>
void
Vm::execThreaded()
{
    static const void *const kLabels[] = {
#define NSE_DOP_LABEL(name, kind, cost) &&L_##name,
        NSE_OPCODE_LIST(NSE_DOP_LABEL)
#undef NSE_DOP_LABEL
        &&L_LdcInt,       &&L_LdcStr,       &&L_StoreConst,
        &&L_Load2Add,     &&L_Load2Sub,     &&L_Load2Mul,
        &&L_IncLocal,     &&L_LoadAddConst, &&L_AddConst,
        &&L_AddStore,     &&L_LoadIdxALoad, &&L_GsLoad,
        &&L_LoadGs,       &&L_StoreGoto,    &&L_LoadLoad,
    };
    static_assert(sizeof(kLabels) / sizeof(kLabels[0]) == kNumDOps,
                  "label table must cover every DOp");

    DFrame *fr = nullptr;
    const DInst *code = nullptr;
    uint32_t pc = 0;
    int32_t sp = 0;
    Value *loc = nullptr;
    Value *stk = nullptr;
    const DInst *d = nullptr;
    uint64_t lclock = 0, lexec = 0, lbc = 0;
    VM_RELOAD();

#define VM_NEXT()                                                       \
    do {                                                                \
        VM_FETCH();                                                     \
        goto *kLabels[static_cast<size_t>(d->op)];                      \
    } while (0)
#define VM_CASE(name) L_##name:
#define VM_BREAK VM_NEXT()

    VM_NEXT();

#include "vm/exec_loop.inc"

#undef VM_BREAK
#undef VM_CASE
#undef VM_NEXT
}

#else

template <bool kHooked>
void
Vm::execThreaded()
{
    // Unreachable: run() routes Threaded to Switch on this build.
    execSwitch<kHooked>();
}

#endif // NSE_THREADED_DISPATCH

template <bool kHooked>
void
Vm::execSwitch()
{
    DFrame *fr = nullptr;
    const DInst *code = nullptr;
    uint32_t pc = 0;
    int32_t sp = 0;
    Value *loc = nullptr;
    Value *stk = nullptr;
    const DInst *d = nullptr;
    uint64_t lclock = 0, lexec = 0, lbc = 0;
    VM_RELOAD();

#define VM_CASE(name) case DOp::name:
#define VM_BREAK break

    for (;;) {
        VM_FETCH();
        switch (d->op) {
#include "vm/exec_loop.inc"
        }
    }

#undef VM_BREAK
#undef VM_CASE
}

#undef VM_FETCH
#undef VM_SAVE
#undef VM_RELOAD

void
Vm::runDecoded(bool threaded)
{
    if (!decoded_) {
        ownedDecoded_ = std::make_unique<DecodedCache>(
            prog_, opts_.blockDelimiterCost);
        decoded_ = ownedDecoded_.get();
    }
    callees_.assign(seen_.size(), Callee{});
    arena_.resize(1024);
    dframes_.reserve(64);

    MethodId entry = prog_.entry();
    noteFirstUse(entry);
    const DecodedMethod &dm = decoded_->get(entry);
    pushDFrame(entry, dm, /*args_off=*/0, /*n_args=*/0);
    if (threaded) {
        if (instr_)
            execThreaded<true>();
        else
            execThreaded<false>();
    } else {
        if (instr_)
            execSwitch<true>();
        else
            execSwitch<false>();
    }
}

VmResult
Vm::run()
{
    NSE_CHECK(!ran_, "Vm::run() called twice; construct a fresh Vm");
    ran_ = true;

    DispatchMode mode = opts_.dispatch;
#if NSE_THREADED_DISPATCH
    if (mode == DispatchMode::Auto)
        mode = DispatchMode::Threaded;
#else
    if (mode == DispatchMode::Auto || mode == DispatchMode::Threaded)
        mode = DispatchMode::Switch;
#endif
    if (mode == DispatchMode::Classic)
        runClassic();
    else
        runDecoded(mode == DispatchMode::Threaded);

    result_.methodsExecuted = seenCount_;
    return std::move(result_);
}

} // namespace nse
