#include "vm/linker.h"

#include "support/error.h"

namespace nse
{

Linker::Linker(const Program &prog) : prog_(prog)
{
    runtime_.resize(prog_.classCount());
}

void
Linker::prepareAll()
{
    for (uint16_t c = 0; c < prog_.classCount(); ++c)
        prepare(c);
}

void
Linker::prepare(uint16_t class_idx)
{
    ClassRuntime &rt = runtime_[class_idx];
    if (rt.prepared)
        return;

    const ClassFile &cf = prog_.classAt(class_idx);

    // Superclass layout first: its slots prefix ours.
    int sup = prog_.superOf(class_idx);
    if (sup >= 0) {
        prepare(static_cast<uint16_t>(sup));
        const ClassRuntime &sup_rt = runtime_[static_cast<size_t>(sup)];
        rt.instanceSlots = sup_rt.instanceSlots;
        rt.instanceCount = sup_rt.instanceCount;
    }

    for (const FieldInfo &f : cf.fields) {
        const std::string &name = cf.fieldName(f);
        if (f.isStatic()) {
            NSE_CHECK(!rt.staticSlots.count(name),
                      "duplicate static field ", cf.name(), ".", name);
            rt.staticSlots.emplace(
                name, static_cast<uint16_t>(rt.statics.size()));
            TypeKind k = parseFieldDescriptor(cf.cpool.utf8At(f.descIdx));
            rt.statics.push_back(k == TypeKind::Int ? Value::makeInt(0)
                                                    : Value::makeNull());
        } else {
            NSE_CHECK(!rt.instanceSlots.count(name),
                      "duplicate/shadowed instance field ", cf.name(), ".",
                      name);
            rt.instanceSlots.emplace(
                name, static_cast<uint16_t>(rt.instanceCount++));
        }
    }
    rt.prepared = true;
}

size_t
Linker::instanceSlotCount(uint16_t class_idx) const
{
    NSE_ASSERT(runtime_[class_idx].prepared, "class not prepared");
    return runtime_[class_idx].instanceCount;
}

const FieldSlot &
Linker::resolveField(uint16_t from_class, uint16_t cp_idx)
{
    ClassRuntime &rt = runtime_[from_class];
    auto it = rt.fieldCache.find(cp_idx);
    if (it != rt.fieldCache.end())
        return it->second;

    const ClassFile &cf = prog_.classAt(from_class);
    auto ref = cf.cpool.memberRef(cp_idx);

    int cidx = prog_.classIndex(ref.className);
    if (cidx < 0)
        fatal("field reference to unknown class ", ref.className);

    // Walk the superclass chain from the named class to the declaration.
    FieldSlot fs;
    fs.kind = parseFieldDescriptor(ref.descriptor);
    int walk = cidx;
    while (walk >= 0) {
        const ClassFile &owner = prog_.classAt(static_cast<uint16_t>(walk));
        int fidx = owner.findField(ref.name);
        if (fidx >= 0) {
            const FieldInfo &f = owner.fields[static_cast<size_t>(fidx)];
            const ClassRuntime &owner_rt =
                runtime_[static_cast<size_t>(walk)];
            NSE_ASSERT(owner_rt.prepared, "resolving into unprepared ",
                       owner.name());
            fs.isStatic = f.isStatic();
            fs.ownerClass = static_cast<uint16_t>(walk);
            if (f.isStatic())
                fs.slot = owner_rt.staticSlots.at(ref.name);
            else
                fs.slot = owner_rt.instanceSlots.at(ref.name);
            ++resolutions_;
            return rt.fieldCache.emplace(cp_idx, fs).first->second;
        }
        walk = prog_.superOf(static_cast<uint16_t>(walk));
    }
    fatal("unresolved field ", ref.className, ".", ref.name);
}

const CallRef &
Linker::resolveCall(uint16_t from_class, uint16_t cp_idx)
{
    ClassRuntime &rt = runtime_[from_class];
    auto it = rt.callCache.find(cp_idx);
    if (it != rt.callCache.end())
        return it->second;

    const ClassFile &cf = prog_.classAt(from_class);
    auto ref = cf.cpool.memberRef(cp_idx);
    CallRef call;
    call.className = ref.className;
    call.name = ref.name;
    call.descriptor = ref.descriptor;
    call.sig = parseMethodDescriptor(ref.descriptor);
    ++resolutions_;
    return rt.callCache.emplace(cp_idx, std::move(call)).first->second;
}

MethodId
Linker::staticTarget(const CallRef &ref) const
{
    return prog_.resolveStatic(ref.className, ref.name, ref.descriptor);
}

MethodId
Linker::virtualTarget(uint16_t receiver_class, const CallRef &ref)
{
    auto key = std::make_pair(receiver_class,
                              cat(ref.name, ref.descriptor));
    auto it = dispatchCache_.find(key);
    if (it != dispatchCache_.end())
        return it->second;
    MethodId id = prog_.resolveVirtual(
        prog_.classAt(receiver_class).name(), ref.name, ref.descriptor);
    dispatchCache_.emplace(std::move(key), id);
    return id;
}

Value
Linker::getStatic(const FieldSlot &fs) const
{
    NSE_ASSERT(fs.isStatic, "getStatic on instance slot");
    return runtime_[fs.ownerClass].statics[fs.slot];
}

void
Linker::setStatic(const FieldSlot &fs, Value v)
{
    NSE_ASSERT(fs.isStatic, "setStatic on instance slot");
    if ((v.isInt() && fs.kind != TypeKind::Int) ||
        (v.isRef() && fs.kind != TypeKind::Ref)) {
        fatal("static field kind mismatch");
    }
    runtime_[fs.ownerClass].statics[fs.slot] = v;
}

} // namespace nse
