#include "vm/linker.h"

#include "support/error.h"

namespace nse
{

Linker::Linker(const Program &prog) : prog_(prog)
{
    runtime_.resize(prog_.classCount());
}

void
Linker::prepareAll()
{
    for (uint16_t c = 0; c < prog_.classCount(); ++c)
        prepare(c);
}

void
Linker::prepare(uint16_t class_idx)
{
    ClassRuntime &rt = runtime_[class_idx];
    if (rt.prepared)
        return;

    const ClassFile &cf = prog_.classAt(class_idx);

    // Superclass layout first: its slots prefix ours.
    int sup = prog_.superOf(class_idx);
    if (sup >= 0) {
        prepare(static_cast<uint16_t>(sup));
        const ClassRuntime &sup_rt = runtime_[static_cast<size_t>(sup)];
        rt.instanceSlots = sup_rt.instanceSlots;
        rt.instanceCount = sup_rt.instanceCount;
    }

    for (const FieldInfo &f : cf.fields) {
        const std::string &name = cf.fieldName(f);
        if (f.isStatic()) {
            NSE_CHECK(!rt.staticSlots.count(name),
                      "duplicate static field ", cf.name(), ".", name);
            rt.staticSlots.emplace(
                name, static_cast<uint16_t>(rt.statics.size()));
            TypeKind k = parseFieldDescriptor(cf.cpool.utf8At(f.descIdx));
            rt.statics.push_back(k == TypeKind::Int ? Value::makeInt(0)
                                                    : Value::makeNull());
        } else {
            NSE_CHECK(!rt.instanceSlots.count(name),
                      "duplicate/shadowed instance field ", cf.name(), ".",
                      name);
            rt.instanceSlots.emplace(
                name, static_cast<uint16_t>(rt.instanceCount++));
        }
    }
    rt.prepared = true;
}

size_t
Linker::instanceSlotCount(uint16_t class_idx) const
{
    NSE_ASSERT(runtime_[class_idx].prepared, "class not prepared");
    return runtime_[class_idx].instanceCount;
}

const FieldSlot &
Linker::resolveFieldSlow(uint16_t from_class, uint16_t cp_idx)
{
    ClassRuntime &rt = runtime_[from_class];
    const ClassFile &cf = prog_.classAt(from_class);
    auto ref = cf.cpool.memberRef(cp_idx);

    int cidx = prog_.classIndex(ref.className);
    if (cidx < 0)
        fatal("field reference to unknown class ", ref.className);

    // Walk the superclass chain from the named class to the declaration.
    FieldSlot fs;
    fs.kind = parseFieldDescriptor(ref.descriptor);
    int walk = cidx;
    while (walk >= 0) {
        const ClassFile &owner = prog_.classAt(static_cast<uint16_t>(walk));
        int fidx = owner.findField(ref.name);
        if (fidx >= 0) {
            const FieldInfo &f = owner.fields[static_cast<size_t>(fidx)];
            const ClassRuntime &owner_rt =
                runtime_[static_cast<size_t>(walk)];
            NSE_ASSERT(owner_rt.prepared, "resolving into unprepared ",
                       owner.name());
            fs.isStatic = f.isStatic();
            fs.ownerClass = static_cast<uint16_t>(walk);
            if (f.isStatic())
                fs.slot = owner_rt.staticSlots.at(ref.name);
            else
                fs.slot = owner_rt.instanceSlots.at(ref.name);
            ++resolutions_;
            if (cp_idx >= rt.fieldCache.size())
                rt.fieldCache.resize(cp_idx + 1);
            rt.fieldCache[cp_idx] = std::make_unique<FieldSlot>(fs);
            return *rt.fieldCache[cp_idx];
        }
        walk = prog_.superOf(static_cast<uint16_t>(walk));
    }
    fatal("unresolved field ", ref.className, ".", ref.name);
}

const CallRef &
Linker::resolveCallSlow(uint16_t from_class, uint16_t cp_idx)
{
    ClassRuntime &rt = runtime_[from_class];
    const ClassFile &cf = prog_.classAt(from_class);
    auto ref = cf.cpool.memberRef(cp_idx);
    auto call = std::make_unique<CallRef>();
    call->className = ref.className;
    call->name = ref.name;
    call->descriptor = ref.descriptor;
    call->sig = parseMethodDescriptor(ref.descriptor);
    call->token = nextToken_++;
    ++resolutions_;
    if (cp_idx >= rt.callCache.size())
        rt.callCache.resize(cp_idx + 1);
    rt.callCache[cp_idx] = std::move(call);
    return *rt.callCache[cp_idx];
}

MethodId
Linker::staticTarget(const CallRef &ref) const
{
    // Name-based resolution once per call site; the memo lives on the
    // CallRef so the hot invoke path skips the string lookups.
    if (!ref.staticCached) {
        ref.staticCache =
            prog_.resolveStatic(ref.className, ref.name, ref.descriptor);
        ref.staticCached = true;
    }
    return ref.staticCache;
}

MethodId
Linker::virtualTarget(uint16_t receiver_class, const CallRef &ref)
{
    // Hand-built CallRefs (no linker token) dispatch without caching.
    if (ref.token == UINT32_MAX) {
        return prog_.resolveVirtual(prog_.classAt(receiver_class).name(),
                                    ref.name, ref.descriptor);
    }
    uint64_t key =
        (static_cast<uint64_t>(receiver_class) << 32) | ref.token;
    auto it = dispatchCache_.find(key);
    if (it != dispatchCache_.end())
        return it->second;
    MethodId id = prog_.resolveVirtual(
        prog_.classAt(receiver_class).name(), ref.name, ref.descriptor);
    dispatchCache_.emplace(key, id);
    return id;
}

} // namespace nse
