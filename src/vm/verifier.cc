#include "vm/verifier.h"

#include <deque>
#include <optional>

#include "classfile/descriptor.h"

namespace nse
{

namespace
{

[[noreturn]] void
verifyFail(const std::string &msg)
{
    throw VerifyError(msg);
}

/** Abstract local-variable type: a value kind or "unset". */
enum class LType : uint8_t
{
    Int,
    Ref,
    Unset,
};

LType
ltypeOf(TypeKind k)
{
    return k == TypeKind::Int ? LType::Int : LType::Ref;
}

/** Abstract machine state at one instruction boundary. */
struct AbsState
{
    std::vector<TypeKind> stack; ///< Int/Ref only
    std::vector<LType> locals;

    bool
    operator==(const AbsState &o) const
    {
        return stack == o.stack && locals == o.locals;
    }
};

/**
 * Merge `in` into `cur`. Returns true when `cur` changed. Stack depths
 * must agree (classic verifier rule); conflicting stack types fail;
 * conflicting locals degrade to Unset.
 */
bool
mergeState(AbsState &cur, const AbsState &in, const std::string &where)
{
    if (cur.stack.size() != in.stack.size())
        verifyFail(cat("stack depth mismatch at join in ", where));
    for (size_t i = 0; i < cur.stack.size(); ++i) {
        if (cur.stack[i] != in.stack[i])
            verifyFail(cat("stack type conflict at join in ", where));
    }
    bool changed = false;
    for (size_t i = 0; i < cur.locals.size(); ++i) {
        if (cur.locals[i] != in.locals[i] &&
            cur.locals[i] != LType::Unset) {
            cur.locals[i] = LType::Unset;
            changed = true;
        }
    }
    return changed;
}

/** Per-method dataflow verification pass. */
class MethodChecker
{
  public:
    MethodChecker(const Program &prog, const ClassFile &cf,
                  const MethodInfo &m, std::string label)
        : prog_(prog), cf_(cf), m_(m), label_(std::move(label))
    {}

    VerifiedMethod run();

  private:
    void checkCpOperand(const Instruction &inst);
    AbsState entryState() const;
    void transfer(const Instruction &inst, AbsState &state,
                  std::optional<size_t> &branch_to, bool &falls_through);

    TypeKind pop(AbsState &s);
    void popExpect(AbsState &s, TypeKind k);
    void push(AbsState &s, TypeKind k);
    void checkLocal(const AbsState &s, int32_t slot, LType want) const;

    const Program &prog_;
    const ClassFile &cf_;
    const MethodInfo &m_;
    std::string label_;
    VerifiedMethod vm_;
    MethodSig sig_;
    uint16_t maxStackSeen_ = 0;
};

TypeKind
MethodChecker::pop(AbsState &s)
{
    if (s.stack.empty())
        verifyFail(cat("operand stack underflow in ", label_));
    TypeKind k = s.stack.back();
    s.stack.pop_back();
    return k;
}

void
MethodChecker::popExpect(AbsState &s, TypeKind k)
{
    TypeKind got = pop(s);
    if (got != k) {
        verifyFail(cat("operand kind mismatch in ", label_, ": expected ",
                       k == TypeKind::Int ? "int" : "ref"));
    }
}

void
MethodChecker::push(AbsState &s, TypeKind k)
{
    s.stack.push_back(k);
    if (s.stack.size() > maxStackSeen_)
        maxStackSeen_ = static_cast<uint16_t>(s.stack.size());
}

void
MethodChecker::checkLocal(const AbsState &s, int32_t slot,
                          LType want) const
{
    if (slot < 0 || static_cast<size_t>(slot) >= s.locals.size())
        verifyFail(cat("local slot ", slot, " out of range in ", label_));
    if (want != LType::Unset && s.locals[static_cast<size_t>(slot)] != want)
        verifyFail(cat("read of wrong/uninitialised local ", slot, " in ",
                       label_));
}

void
MethodChecker::checkCpOperand(const Instruction &inst)
{
    auto idx = static_cast<uint16_t>(inst.operand);
    const ConstantPool &cp = cf_.cpool;
    if (!cp.valid(idx))
        verifyFail(cat("constant-pool index ", idx, " out of range in ",
                       label_));
    const CpEntry &e = cp.at(idx);
    switch (inst.op) {
      case Opcode::LDC:
        if (e.tag != CpTag::Integer && e.tag != CpTag::String)
            verifyFail(cat("LDC of unsupported tag ", cpTagName(e.tag),
                           " in ", label_));
        break;
      case Opcode::INVOKESTATIC:
      case Opcode::INVOKEVIRTUAL:
        if (e.tag != CpTag::MethodRef &&
            e.tag != CpTag::InterfaceMethodRef) {
            verifyFail(cat("invoke of non-method cp entry in ", label_));
        }
        break;
      case Opcode::GETFIELD:
      case Opcode::PUTFIELD:
      case Opcode::GETSTATIC:
      case Opcode::PUTSTATIC:
        if (e.tag != CpTag::FieldRef)
            verifyFail(cat("field access of non-field cp entry in ",
                           label_));
        break;
      case Opcode::NEW:
        if (e.tag != CpTag::Class)
            verifyFail(cat("NEW of non-class cp entry in ", label_));
        break;
      default:
        panic("unexpected cp-operand opcode");
    }
}

AbsState
MethodChecker::entryState() const
{
    AbsState s;
    s.locals.assign(m_.maxLocals, LType::Unset);
    size_t slot = 0;
    if (!m_.isStatic()) {
        if (m_.maxLocals < 1)
            verifyFail(cat("maxLocals too small for receiver in ", label_));
        s.locals[slot++] = LType::Ref;
    }
    for (TypeKind k : sig_.params) {
        if (slot >= m_.maxLocals)
            verifyFail(cat("maxLocals too small for arguments in ",
                           label_));
        s.locals[slot++] = ltypeOf(k);
    }
    return s;
}

void
MethodChecker::transfer(const Instruction &inst, AbsState &s,
                        std::optional<size_t> &branch_to,
                        bool &falls_through)
{
    branch_to.reset();
    falls_through = true;

    switch (inst.op) {
      case Opcode::NOP:
        break;
      case Opcode::PUSH_I8:
      case Opcode::PUSH_I32:
        push(s, TypeKind::Int);
        break;
      case Opcode::LDC: {
        checkCpOperand(inst);
        const CpEntry &e = cf_.cpool.at(static_cast<uint16_t>(inst.operand));
        push(s, e.tag == CpTag::Integer ? TypeKind::Int : TypeKind::Ref);
        break;
      }
      case Opcode::ACONST_NULL:
        push(s, TypeKind::Ref);
        break;
      case Opcode::ILOAD:
        checkLocal(s, inst.operand, LType::Int);
        push(s, TypeKind::Int);
        break;
      case Opcode::ALOAD:
        checkLocal(s, inst.operand, LType::Ref);
        push(s, TypeKind::Ref);
        break;
      case Opcode::ISTORE:
        checkLocal(s, inst.operand, LType::Unset);
        popExpect(s, TypeKind::Int);
        s.locals[static_cast<size_t>(inst.operand)] = LType::Int;
        break;
      case Opcode::ASTORE:
        checkLocal(s, inst.operand, LType::Unset);
        popExpect(s, TypeKind::Ref);
        s.locals[static_cast<size_t>(inst.operand)] = LType::Ref;
        break;
      case Opcode::POP:
        pop(s);
        break;
      case Opcode::DUP: {
        TypeKind k = pop(s);
        push(s, k);
        push(s, k);
        break;
      }
      case Opcode::DUP_X1: {
        TypeKind a = pop(s);
        TypeKind b = pop(s);
        push(s, a);
        push(s, b);
        push(s, a);
        break;
      }
      case Opcode::SWAP: {
        TypeKind a = pop(s);
        TypeKind b = pop(s);
        push(s, a);
        push(s, b);
        break;
      }
      case Opcode::IADD:
      case Opcode::ISUB:
      case Opcode::IMUL:
      case Opcode::IDIV:
      case Opcode::IREM:
      case Opcode::ISHL:
      case Opcode::ISHR:
      case Opcode::IUSHR:
      case Opcode::IAND:
      case Opcode::IOR:
      case Opcode::IXOR:
        popExpect(s, TypeKind::Int);
        popExpect(s, TypeKind::Int);
        push(s, TypeKind::Int);
        break;
      case Opcode::INEG:
        popExpect(s, TypeKind::Int);
        push(s, TypeKind::Int);
        break;
      case Opcode::IFEQ:
      case Opcode::IFNE:
      case Opcode::IFLT:
      case Opcode::IFGE:
      case Opcode::IFGT:
      case Opcode::IFLE:
        popExpect(s, TypeKind::Int);
        branch_to = vm_.indexOf(static_cast<uint32_t>(inst.operand));
        break;
      case Opcode::IF_ICMPEQ:
      case Opcode::IF_ICMPNE:
      case Opcode::IF_ICMPLT:
      case Opcode::IF_ICMPGE:
      case Opcode::IF_ICMPGT:
      case Opcode::IF_ICMPLE:
        popExpect(s, TypeKind::Int);
        popExpect(s, TypeKind::Int);
        branch_to = vm_.indexOf(static_cast<uint32_t>(inst.operand));
        break;
      case Opcode::IF_ACMPEQ:
      case Opcode::IF_ACMPNE:
        popExpect(s, TypeKind::Ref);
        popExpect(s, TypeKind::Ref);
        branch_to = vm_.indexOf(static_cast<uint32_t>(inst.operand));
        break;
      case Opcode::IFNULL:
      case Opcode::IFNONNULL:
        popExpect(s, TypeKind::Ref);
        branch_to = vm_.indexOf(static_cast<uint32_t>(inst.operand));
        break;
      case Opcode::GOTO:
        branch_to = vm_.indexOf(static_cast<uint32_t>(inst.operand));
        falls_through = false;
        break;
      case Opcode::INVOKESTATIC:
      case Opcode::INVOKEVIRTUAL: {
        checkCpOperand(inst);
        auto ref =
            cf_.cpool.memberRef(static_cast<uint16_t>(inst.operand));
        MethodSig callee = parseMethodDescriptor(ref.descriptor);
        for (auto it = callee.params.rbegin(); it != callee.params.rend();
             ++it) {
            popExpect(s, *it);
        }
        if (inst.op == Opcode::INVOKEVIRTUAL)
            popExpect(s, TypeKind::Ref);
        // Interprocedural dependence: the callee class must exist and
        // declare (or inherit, for virtual sends) a matching method.
        if (inst.op == Opcode::INVOKESTATIC)
            prog_.resolveStatic(ref.className, ref.name, ref.descriptor);
        else
            prog_.resolveVirtual(ref.className, ref.name, ref.descriptor);
        if (callee.ret != TypeKind::Void)
            push(s, callee.ret);
        break;
      }
      case Opcode::RETURN:
        if (sig_.ret != TypeKind::Void)
            verifyFail(cat("RETURN in non-void method ", label_));
        falls_through = false;
        break;
      case Opcode::IRETURN:
        if (sig_.ret != TypeKind::Int)
            verifyFail(cat("IRETURN in non-int method ", label_));
        popExpect(s, TypeKind::Int);
        falls_through = false;
        break;
      case Opcode::ARETURN:
        if (sig_.ret != TypeKind::Ref)
            verifyFail(cat("ARETURN in non-ref method ", label_));
        popExpect(s, TypeKind::Ref);
        falls_through = false;
        break;
      case Opcode::NEW:
        checkCpOperand(inst);
        push(s, TypeKind::Ref);
        break;
      case Opcode::NEWARRAY:
      case Opcode::ANEWARRAY:
        popExpect(s, TypeKind::Int);
        push(s, TypeKind::Ref);
        break;
      case Opcode::IALOAD:
        popExpect(s, TypeKind::Int);
        popExpect(s, TypeKind::Ref);
        push(s, TypeKind::Int);
        break;
      case Opcode::AALOAD:
        popExpect(s, TypeKind::Int);
        popExpect(s, TypeKind::Ref);
        push(s, TypeKind::Ref);
        break;
      case Opcode::IASTORE:
        popExpect(s, TypeKind::Int);
        popExpect(s, TypeKind::Int);
        popExpect(s, TypeKind::Ref);
        break;
      case Opcode::AASTORE:
        popExpect(s, TypeKind::Ref);
        popExpect(s, TypeKind::Int);
        popExpect(s, TypeKind::Ref);
        break;
      case Opcode::ARRAYLENGTH:
        popExpect(s, TypeKind::Ref);
        push(s, TypeKind::Int);
        break;
      case Opcode::GETFIELD:
      case Opcode::PUTFIELD:
      case Opcode::GETSTATIC:
      case Opcode::PUTSTATIC: {
        checkCpOperand(inst);
        auto ref =
            cf_.cpool.memberRef(static_cast<uint16_t>(inst.operand));
        TypeKind fk = parseFieldDescriptor(ref.descriptor);
        if (inst.op == Opcode::PUTFIELD || inst.op == Opcode::PUTSTATIC)
            popExpect(s, fk);
        if (inst.op == Opcode::GETFIELD || inst.op == Opcode::PUTFIELD)
            popExpect(s, TypeKind::Ref);
        if (inst.op == Opcode::GETFIELD || inst.op == Opcode::GETSTATIC)
            push(s, fk);
        break;
      }
    }
}

VerifiedMethod
MethodChecker::run()
{
    if (m_.isNative())
        verifyFail(cat("native method has no code to verify: ", label_));

    sig_ = parseMethodDescriptor(cf_.cpool.utf8At(m_.descIdx));

    try {
        vm_.insts = decodeCode(m_.code);
    } catch (const FatalError &e) {
        verifyFail(cat("undecodable code in ", label_, ": ", e.what()));
    }
    if (vm_.insts.empty())
        verifyFail(cat("empty code in non-native method ", label_));

    vm_.offsetToIndex.assign(m_.code.size(), -1);
    for (size_t i = 0; i < vm_.insts.size(); ++i)
        vm_.offsetToIndex[vm_.insts[i].offset] = static_cast<int32_t>(i);

    // Validate branch targets before dataflow so indexOf can't fail
    // mid-pass.
    for (const auto &inst : vm_.insts) {
        if (!isBranch(inst.op))
            continue;
        auto off = static_cast<uint32_t>(inst.operand);
        if (off >= m_.code.size() || vm_.offsetToIndex[off] < 0)
            verifyFail(cat("branch to non-instruction offset ", off,
                           " in ", label_));
    }

    // Worklist dataflow pass.
    std::vector<std::optional<AbsState>> states(vm_.insts.size());
    std::deque<size_t> worklist;
    states[0] = entryState();
    worklist.push_back(0);

    auto flow_to = [&](size_t target, const AbsState &in) {
        if (!states[target]) {
            states[target] = in;
            worklist.push_back(target);
        } else if (mergeState(*states[target], in, label_)) {
            worklist.push_back(target);
        }
    };

    while (!worklist.empty()) {
        size_t idx = worklist.front();
        worklist.pop_front();
        AbsState s = *states[idx];
        std::optional<size_t> branch_to;
        bool falls_through = true;
        transfer(vm_.insts[idx], s, branch_to, falls_through);
        if (branch_to)
            flow_to(*branch_to, s);
        if (falls_through) {
            if (idx + 1 >= vm_.insts.size())
                verifyFail(cat("control falls off the end of ", label_));
            flow_to(idx + 1, s);
        }
    }

    // Export the converged dataflow facts (consumed by the
    // procedure-splitting pass).
    vm_.stackDepthIn.assign(vm_.insts.size(), -1);
    vm_.localsIn.resize(vm_.insts.size());
    for (size_t i = 0; i < vm_.insts.size(); ++i) {
        if (!states[i])
            continue;
        vm_.stackDepthIn[i] =
            static_cast<int32_t>(states[i]->stack.size());
        vm_.localsIn[i].reserve(states[i]->locals.size());
        for (LType lt : states[i]->locals) {
            vm_.localsIn[i].push_back(lt == LType::Int ? LocalKind::Int
                                      : lt == LType::Ref
                                          ? LocalKind::Ref
                                          : LocalKind::Unset);
        }
    }

    vm_.maxStack = maxStackSeen_;
    return std::move(vm_);
}

} // namespace

void
cpClosure(const ConstantPool &cp, uint16_t idx, std::set<uint16_t> &out)
{
    if (idx == 0 || !out.insert(idx).second)
        return;
    const CpEntry &e = cp.at(idx);
    switch (e.tag) {
      case CpTag::Class:
      case CpTag::String:
        cpClosure(cp, e.ref1, out);
        break;
      case CpTag::NameAndType:
      case CpTag::FieldRef:
      case CpTag::MethodRef:
      case CpTag::InterfaceMethodRef:
        cpClosure(cp, e.ref1, out);
        cpClosure(cp, e.ref2, out);
        break;
      default:
        break;
    }
}

std::set<uint16_t>
methodCpDependencies(const ClassFile &cf, const MethodInfo &m)
{
    std::set<uint16_t> needs;
    cpClosure(cf.cpool, m.nameIdx, needs);
    cpClosure(cf.cpool, m.descIdx, needs);
    if (m.isNative())
        return needs;
    for (const Instruction &inst : decodeCode(m.code)) {
        if (opcodeInfo(inst.op).operand == OperandKind::CpIdx)
            cpClosure(cf.cpool, static_cast<uint16_t>(inst.operand),
                      needs);
    }
    return needs;
}

size_t
VerifiedMethod::indexOf(uint32_t offset) const
{
    NSE_ASSERT(offset < offsetToIndex.size() && offsetToIndex[offset] >= 0,
               "branch to unchecked offset ", offset);
    return static_cast<size_t>(offsetToIndex[offset]);
}

void
Verifier::verifyClass(uint16_t class_idx) const
{
    const ClassFile &cf = prog_.classAt(class_idx);
    const ConstantPool &cp = cf.cpool;

    // Constant-pool internal consistency.
    for (uint16_t i = 1; i < cp.size(); ++i) {
        const CpEntry &e = cp.at(i);
        switch (e.tag) {
          case CpTag::Class:
          case CpTag::String:
            cp.at(e.ref1, CpTag::Utf8);
            break;
          case CpTag::NameAndType:
            cp.at(e.ref1, CpTag::Utf8);
            cp.at(e.ref2, CpTag::Utf8);
            break;
          case CpTag::FieldRef:
          case CpTag::MethodRef:
          case CpTag::InterfaceMethodRef:
            cp.at(e.ref1, CpTag::Class);
            cp.at(e.ref2, CpTag::NameAndType);
            break;
          default:
            break;
        }
    }

    cp.at(cf.thisClassIdx, CpTag::Class);
    if (cf.superClassIdx != 0)
        cp.at(cf.superClassIdx, CpTag::Class);
    for (uint16_t idx : cf.interfaceIdxs)
        cp.at(idx, CpTag::Class);

    for (const FieldInfo &f : cf.fields)
        parseFieldDescriptor(cp.utf8At(f.descIdx));

    for (const MethodInfo &m : cf.methods) {
        MethodSig sig = parseMethodDescriptor(cp.utf8At(m.descIdx));
        if (!m.isNative() && m.maxLocals < sig.argSlots(m.isStatic())) {
            verifyFail(cat("maxLocals below argument slots in ",
                           cf.name(), ".", cf.methodName(m)));
        }
        if (m.isNative() && !m.code.empty())
            verifyFail(cat("native method with code: ", cf.name(), ".",
                           cf.methodName(m)));
    }
}

VerifiedMethod
Verifier::verifyMethod(MethodId id) const
{
    const ClassFile &cf = prog_.classAt(id.classIdx);
    const MethodInfo &m = prog_.method(id);
    MethodChecker checker(prog_, cf, m, prog_.methodLabel(id));
    return checker.run();
}

void
Verifier::verifyAll() const
{
    for (uint16_t c = 0; c < prog_.classCount(); ++c) {
        verifyClass(c);
        const ClassFile &cf = prog_.classAt(c);
        for (uint16_t m = 0; m < cf.methods.size(); ++m) {
            if (!cf.methods[m].isNative())
                verifyMethod(MethodId{c, m});
        }
    }
}

} // namespace nse
