/**
 * @file
 * The pre-decoded instruction representation behind the fast
 * interpreter loops (the translate-once half of the valgrind idiom:
 * translate a verified method body once into a dense internal form,
 * execute that form many times).
 *
 * A DInst is 16 bytes: the operation, how many source bytecodes it
 * covers, the cycle cost to charge (opcodeInfo() already folded in,
 * block-delimiter cost baked into branches/returns), and two inlined
 * operands. Lowering resolves everything resolvable from constant
 * program data at decode time — branch targets become instruction
 * indices, LDC splits into LdcInt/LdcStr on the entry's verified tag,
 * NEW pre-resolves its class index — and fuses common adjacent pairs
 * and triples into superinstructions. Nothing observable moves: costs
 * are summed exactly, fused sequences never cross a branch-target
 * boundary, and calls/branches/returns are never fused, so clock,
 * bytecode count, heap effects, and every hook firing are bit-exact
 * against the classic one-bytecode-at-a-time interpreter.
 *
 * Each method decodes to two streams over the same body: `fast`
 * (fused; run when no instruction hook observes the run) and `plain`
 * (1:1 with the verified instructions; run under an instruction hook
 * so the hook sees every source bytecode exactly as before).
 */

#ifndef NSE_VM_DECODED_H
#define NSE_VM_DECODED_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "bytecode/opcode.h"
#include "program/program.h"
#include "vm/verifier.h"

namespace nse
{

/**
 * Decoded operations. The first kNumOpcodes values mirror Opcode
 * one-to-one (same numeric encoding); the tail adds decode-time
 * specializations and superinstructions.
 */
enum class DOp : uint8_t
{
#define NSE_DOP_ENUM(name, kind, cost) name,
    NSE_OPCODE_LIST(NSE_DOP_ENUM)
#undef NSE_DOP_ENUM
    /** LDC of an Integer entry; value = (b << 32) | (uint32)a. */
    LdcInt,
    /** LDC of a String entry; a = constant-pool index. */
    LdcStr,
    /** PUSH imm; ISTORE slot — a = slot, b = imm. */
    StoreConst,
    /** ILOAD a; ILOAD b; IADD. */
    Load2Add,
    /** ILOAD a; ILOAD b; ISUB. */
    Load2Sub,
    /** ILOAD a; ILOAD b; IMUL. */
    Load2Mul,
    /** ILOAD a; PUSH b; IADD; ISTORE a (same slot). */
    IncLocal,
    /** ILOAD a; PUSH b; IADD (no same-slot store follows). */
    LoadAddConst,
    /** PUSH b; IADD — add an immediate to the stack top. */
    AddConst,
    /** IADD; ISTORE a — pop two, store their sum into a local. */
    AddStore,
    /** ILOAD a; IALOAD — array load with the index from a local. */
    LoadIdxALoad,
    /** GETSTATIC a; ILOAD b — push a static, then a local. */
    GsLoad,
    /** ILOAD a; GETSTATIC b — push a local, then a static. */
    LoadGs,
    /** ISTORE a; GOTO b — store, then jump (delimiter cost baked in). */
    StoreGoto,
    /** ILOAD a; ILOAD b (no arith follows). */
    LoadLoad,
};

/** Number of DOp values (= label-table size of the threaded loop). */
constexpr size_t kNumDOps = kNumOpcodes + 15;

/** One decoded instruction. Dense, fixed-size, cache-friendly. */
struct DInst
{
    DOp op = DOp::NOP;
    /** Source bytecodes this instruction covers (1 unless fused). */
    uint8_t count = 1;
    uint16_t pad = 0;
    /** Cycles charged on dispatch (cost sum + delimiter surcharge). */
    uint32_t cost = 0;
    /** First inlined operand (slot / cp index / target index / imm). */
    int32_t a = 0;
    /** Second inlined operand (superinstructions, LdcInt high half). */
    int32_t b = 0;
};

static_assert(sizeof(DInst) == 16, "DInst must stay dense");

/** A verified method body lowered for the fast interpreter loops. */
struct DecodedMethod
{
    /** The verified body (kept for hooks and differential tests). */
    VerifiedMethod verified;
    /** Fused stream; branch operands index into this stream. */
    std::vector<DInst> fast;
    /** Unfused stream, element i covering verified.insts[i] exactly. */
    std::vector<DInst> plain;
    /** Local-slot count (cached off MethodInfo for frame setup). */
    uint16_t maxLocals = 0;
};

/** Reconstruct the 64-bit constant of an LdcInt instruction. */
inline int64_t
ldcIntValue(const DInst &d)
{
    return static_cast<int64_t>(
        (static_cast<uint64_t>(static_cast<uint32_t>(d.b)) << 32) |
        static_cast<uint32_t>(d.a));
}

/**
 * Lower one verified method. `block_delimiter_cost` is baked into
 * every branch/return DInst, matching the classic interpreter's extra
 * charge at basic-block boundaries.
 */
DecodedMethod decodeMethod(const Program &prog, MethodId id,
                           const VerifiedMethod &vm,
                           uint32_t block_delimiter_cost);

/**
 * Lazily verifies + decodes method bodies, memoized for the life of
 * the cache. Thread-safe (mutex-guarded, like SimContext's layout and
 * schedule memos); returned references are stable. One cache serves
 * every Vm run over the same program with the same delimiter cost —
 * this is what makes decode a once-per-workload cost instead of a
 * once-per-run cost.
 */
class DecodedCache
{
  public:
    explicit DecodedCache(const Program &prog,
                          uint32_t block_delimiter_cost = 0)
        : prog_(prog), verifier_(prog),
          blockDelimiterCost_(block_delimiter_cost)
    {
    }

    DecodedCache(const DecodedCache &) = delete;
    DecodedCache &operator=(const DecodedCache &) = delete;

    /** Verify + decode on first request; memoized thereafter. */
    const DecodedMethod &get(MethodId id) const;

    uint32_t blockDelimiterCost() const { return blockDelimiterCost_; }

  private:
    const Program &prog_;
    Verifier verifier_;
    uint32_t blockDelimiterCost_;
    mutable std::mutex mu_;
    mutable std::map<MethodId, std::unique_ptr<DecodedMethod>> cache_;
};

} // namespace nse

#endif // NSE_VM_DECODED_H
