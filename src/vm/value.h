/**
 * @file
 * Runtime values of the substrate VM.
 *
 * The VM is a two-kind machine, matching the descriptor grammar: ints
 * (64-bit at runtime so workload arithmetic can't silently wrap the
 * simulator) and references (opaque heap handles; handle 0 is null).
 */

#ifndef NSE_VM_VALUE_H
#define NSE_VM_VALUE_H

#include <cstdint>

#include "classfile/descriptor.h"
#include "support/error.h"

namespace nse
{

/** Heap handle; 0 is null. */
using Ref = uint32_t;
constexpr Ref kNullRef = 0;

/** One runtime value: an int or a reference. */
struct Value
{
    TypeKind kind = TypeKind::Int;
    int64_t i = 0;
    Ref ref = kNullRef;

    static Value
    makeInt(int64_t v)
    {
        Value out;
        out.kind = TypeKind::Int;
        out.i = v;
        return out;
    }

    static Value
    makeRef(Ref r)
    {
        Value out;
        out.kind = TypeKind::Ref;
        out.ref = r;
        return out;
    }

    static Value makeNull() { return makeRef(kNullRef); }

    bool isInt() const { return kind == TypeKind::Int; }
    bool isRef() const { return kind == TypeKind::Ref; }

    int64_t
    asInt() const
    {
        NSE_ASSERT(isInt(), "value is not an int");
        return i;
    }

    Ref
    asRef() const
    {
        NSE_ASSERT(isRef(), "value is not a reference");
        return ref;
    }
};

} // namespace nse

#endif // NSE_VM_VALUE_H
