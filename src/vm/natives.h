/**
 * @file
 * Native-method registry.
 *
 * Workload programs declare native methods (window system, console,
 * file I/O) in their class files; the VM dispatches them here. Each
 * native has a handler (so programs remain functionally verifiable —
 * output is captured) and a cycle cost. Costs are the calibration knob
 * that reproduces the paper's wide per-program CPI range: e.g. the
 * Hanoi applet's CPI of 3830 comes from uninstrumented window-system
 * calls, which we model as expensive Gfx natives.
 */

#ifndef NSE_VM_NATIVES_H
#define NSE_VM_NATIVES_H

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "vm/heap.h"
#include "vm/value.h"

namespace nse
{

/** Execution context handed to native handlers. */
struct NativeContext
{
    Heap &heap;
    /** Program-observable output stream (ints and char codes). */
    std::vector<int64_t> &output;
    /** Workload input stream (the paper's train/test input sets). */
    const std::vector<int64_t> &input;
};

/** Native handler: consumes argument values, may return a value. */
using NativeFn =
    std::function<Value(NativeContext &, const std::vector<Value> &)>;

/** A registered native method body plus its cycle cost. */
struct NativeMethod
{
    NativeFn fn;
    uint64_t cycleCost = 0;
};

/** Maps "Class.method" names to native bodies. */
class NativeRegistry
{
  public:
    /** Register (or replace) a native. */
    void add(std::string_view qualified_name, NativeFn fn,
             uint64_t cycle_cost);

    /** Re-cost an existing native (workload CPI calibration). */
    void setCost(std::string_view qualified_name, uint64_t cycle_cost);

    bool has(std::string_view qualified_name) const;

    /** Lookup; fatal()s on unknown natives. */
    const NativeMethod &lookup(std::string_view qualified_name) const;

    /**
     * Visit every registered native in name order. Cycle costs are
     * part of a program's timing identity, so content-addressed
     * caches of instrumented runs hash them alongside the class
     * bytes (sim/context.cc).
     */
    void forEach(const std::function<void(const std::string &name,
                                          uint64_t cycle_cost)> &fn) const;

  private:
    std::map<std::string, NativeMethod, std::less<>> natives_;
};

/**
 * The standard native library all workloads share:
 *   Sys.print(I)V      append an int to the output stream
 *   Sys.printChar(I)V  append a char code to the output stream
 *   Sys.printArr(A)V   append every element of an int array
 *   Gfx.drawDisk(III)V window-system draw call (expensive)
 *   Gfx.clear()V       window-system clear (expensive)
 *   File.writeBlock(A)V  write an int array "block" to a file
 *   File.readByte(I)I  deterministic pseudo file input
 *   Sys.argCount()I    number of workload input values
 *   Sys.arg(I)I        read one workload input value
 */
NativeRegistry standardNatives();

} // namespace nse

#endif // NSE_VM_NATIVES_H
