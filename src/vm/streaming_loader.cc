#include "vm/streaming_loader.h"

#include <cstring>

#include "bytecode/instruction.h"
#include "classfile/parser.h"
#include "classfile/writer.h"
#include "program/program.h"
#include "support/bytebuffer.h"
#include "support/error.h"
#include "vm/verifier.h"

namespace nse
{

namespace
{

/** True when a parse failure only means "more bytes needed". */
bool
isTruncation(const FatalError &e)
{
    return std::string_view(e.what()).find("truncated input") !=
           std::string_view::npos;
}

} // namespace

size_t
StreamingLoader::feed(const uint8_t *data, size_t n)
{
    NSE_CHECK(phase_ != LoadPhase::Complete || n == 0,
              "bytes fed past the end of the class file");
    buffer_.insert(buffer_.end(), data, data + n);

    if (phase_ == LoadPhase::AwaitingGlobalData)
        tryParseGlobalData();
    if (phase_ == LoadPhase::LoadingMethods)
        return tryParseMethods();
    return 0;
}

size_t
StreamingLoader::feed(const std::vector<uint8_t> &bytes)
{
    return feed(bytes.data(), bytes.size());
}

void
StreamingLoader::tryParseGlobalData()
{
    // Reject wrong streams as soon as the magic is in.
    if (buffer_.size() >= 4) {
        uint32_t magic = (uint32_t(buffer_[0]) << 24) |
                         (uint32_t(buffer_[1]) << 16) |
                         (uint32_t(buffer_[2]) << 8) |
                         uint32_t(buffer_[3]);
        if (magic != kClassFileMagic)
            fatal("streaming loader: bad class-file magic");
    }

    GlobalDataView view;
    try {
        view = parseGlobalData(buffer_);
    } catch (const FatalError &e) {
        if (isTruncation(e))
            return; // keep waiting
        throw;
    }

    loaded_ = std::move(view.partial);
    methodCount_ = view.methodCount;
    globalDataEnd_ = view.globalDataEnd;
    parsePos_ = view.globalDataEnd;

    // Verification steps 1-2 run the moment the global data is whole
    // — before a single method byte has arrived (paper §3.1.1).
    Program scratch({loaded_}, loaded_.name(),
                    /*entry method irrelevant here*/ "");
    Verifier verifier(scratch);
    verifier.verifyClass(0);

    phase_ = methodCount_ == 0 ? LoadPhase::Complete
                               : LoadPhase::LoadingMethods;
}

size_t
StreamingLoader::tryParseMethods()
{
    size_t arrived = 0;
    // Serialized method layout (see classfile/writer.cc):
    //   u16 access, u16 name, u16 desc, u16 maxLocals,
    //   u32 localLen, bytes, u32 codeLen, bytes, u32 delimiter.
    while (loaded_.methods.size() < methodCount_) {
        size_t avail = buffer_.size() - parsePos_;
        if (avail < 12)
            break;
        ByteReader head(buffer_.data() + parsePos_, avail);
        head.skip(8);
        uint32_t local_len = head.getU32();
        if (avail < 12 + local_len + 4)
            break;
        ByteReader code_len_reader(
            buffer_.data() + parsePos_ + 12 + local_len, 4);
        uint32_t code_len = code_len_reader.getU32();
        size_t record = 12 + local_len + 4 + code_len + 4;
        if (avail < record)
            break;

        // The full record (through its delimiter) has arrived.
        ByteReader r(buffer_.data() + parsePos_, record);
        MethodInfo m;
        m.accessFlags = r.getU16();
        m.nameIdx = r.getU16();
        m.descIdx = r.getU16();
        m.maxLocals = r.getU16();
        m.localData = r.getBytes(r.getU32());
        m.code = r.getBytes(r.getU32());
        uint32_t delim = r.getU32();
        if (delim != kMethodDelimiter)
            fatal("streaming loader: corrupt method delimiter");

        // Local step-3 checks at arrival: the method's names must be
        // valid pool entries, its descriptor must parse, and its code
        // must decode (non-native methods).
        parseMethodDescriptor(loaded_.cpool.utf8At(m.descIdx));
        loaded_.cpool.utf8At(m.nameIdx);
        if (!m.isNative())
            decodeCode(m.code);

        parsePos_ += record;
        methodEnds_.push_back(parsePos_);
        loaded_.methods.push_back(std::move(m));
        ++arrived;
    }
    if (loaded_.methods.size() == methodCount_) {
        phase_ = LoadPhase::Complete;
        NSE_CHECK(parsePos_ >= buffer_.size(),
                  "trailing bytes after the last method");
    }
    return arrived;
}

size_t
StreamingLoader::methodEndOffset(size_t i) const
{
    NSE_ASSERT(i < methodEnds_.size(), "method ", i, " not yet loaded");
    return methodEnds_[i];
}

const ClassFile &
StreamingLoader::classFile() const
{
    NSE_ASSERT(phase_ != LoadPhase::AwaitingGlobalData,
               "class file not available before its global data");
    return loaded_;
}

} // namespace nse
