/**
 * @file
 * Incremental linking: preparation and lazy resolution.
 *
 * Linking in the paper's model (§3.1) is verification + preparation +
 * resolution. Preparation (static storage and instance layouts) runs
 * once per class and only needs the class's global data; resolution of
 * symbolic references is performed lazily, the first time an
 * instruction touches a constant-pool reference — exactly the property
 * that lets a non-strict JVM link classes whose methods are still in
 * flight. The Linker counts resolutions so experiments can report
 * linking activity.
 */

#ifndef NSE_VM_LINKER_H
#define NSE_VM_LINKER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "classfile/descriptor.h"
#include "program/program.h"
#include "vm/value.h"

namespace nse
{

/** A resolved field reference. */
struct FieldSlot
{
    bool isStatic = false;
    /** Class that declares the field. */
    uint16_t ownerClass = 0;
    /** Static-table or instance-layout slot. */
    uint16_t slot = 0;
    TypeKind kind = TypeKind::Int;
};

/** A parsed (but not yet dispatched) call reference. */
struct CallRef
{
    std::string className;
    std::string name;
    std::string descriptor;
    MethodSig sig;
};

/** Prepares classes and resolves symbolic references on demand. */
class Linker
{
  public:
    explicit Linker(const Program &prog);

    /** Preparation: static storage + instance layouts for all classes. */
    void prepareAll();

    /** Number of instance-field slots an object of this class carries. */
    size_t instanceSlotCount(uint16_t class_idx) const;

    /** Resolve a FieldRef used from `from_class`; cached per cp slot. */
    const FieldSlot &resolveField(uint16_t from_class, uint16_t cp_idx);

    /** Resolve a Method/InterfaceMethodRef; cached per cp slot. */
    const CallRef &resolveCall(uint16_t from_class, uint16_t cp_idx);

    /** Exact static-dispatch target of a resolved call. */
    MethodId staticTarget(const CallRef &ref) const;

    /** Virtual dispatch from the receiver's dynamic class; memoised. */
    MethodId virtualTarget(uint16_t receiver_class, const CallRef &ref);

    Value getStatic(const FieldSlot &fs) const;
    void setStatic(const FieldSlot &fs, Value v);

    /** Number of distinct symbolic references resolved so far. */
    uint64_t resolutionCount() const { return resolutions_; }

  private:
    struct ClassRuntime
    {
        bool prepared = false;
        /** Static field storage and name->slot map. */
        std::vector<Value> statics;
        std::map<std::string, uint16_t> staticSlots;
        /** Instance layout: name->slot across the super chain. */
        std::map<std::string, uint16_t> instanceSlots;
        size_t instanceCount = 0;
        /** Lazy per-cp-index resolution caches. */
        std::map<uint16_t, FieldSlot> fieldCache;
        std::map<uint16_t, CallRef> callCache;
    };

    void prepare(uint16_t class_idx);

    const Program &prog_;
    std::vector<ClassRuntime> runtime_;
    std::map<std::pair<uint16_t, std::string>, MethodId> dispatchCache_;
    uint64_t resolutions_ = 0;
};

} // namespace nse

#endif // NSE_VM_LINKER_H
