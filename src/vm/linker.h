/**
 * @file
 * Incremental linking: preparation and lazy resolution.
 *
 * Linking in the paper's model (§3.1) is verification + preparation +
 * resolution. Preparation (static storage and instance layouts) runs
 * once per class and only needs the class's global data; resolution of
 * symbolic references is performed lazily, the first time an
 * instruction touches a constant-pool reference — exactly the property
 * that lets a non-strict JVM link classes whose methods are still in
 * flight. The Linker counts resolutions so experiments can report
 * linking activity.
 */

#ifndef NSE_VM_LINKER_H
#define NSE_VM_LINKER_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "classfile/descriptor.h"
#include "program/program.h"
#include "support/error.h"
#include "vm/value.h"

namespace nse
{

/** A resolved field reference. */
struct FieldSlot
{
    bool isStatic = false;
    /** Class that declares the field. */
    uint16_t ownerClass = 0;
    /** Static-table or instance-layout slot. */
    uint16_t slot = 0;
    TypeKind kind = TypeKind::Int;
};

/** A parsed (but not yet dispatched) call reference. */
struct CallRef
{
    std::string className;
    std::string name;
    std::string descriptor;
    MethodSig sig;
    /**
     * Linker-assigned identity of this call site, used as half of the
     * integer key into the virtual-dispatch cache (hand-built CallRefs
     * keep the sentinel and dispatch without caching).
     */
    uint32_t token = UINT32_MAX;
    /** Lazily memoised static-dispatch target (resolved by name once). */
    mutable MethodId staticCache{};
    mutable bool staticCached = false;
};

/** Prepares classes and resolves symbolic references on demand. */
class Linker
{
  public:
    explicit Linker(const Program &prog);

    /** Preparation: static storage + instance layouts for all classes. */
    void prepareAll();

    /** Number of instance-field slots an object of this class carries. */
    size_t instanceSlotCount(uint16_t class_idx) const;

    /** Resolve a FieldRef used from `from_class`; cached per cp slot.
     *  The cache-hit path is inline — it runs per field instruction. */
    const FieldSlot &
    resolveField(uint16_t from_class, uint16_t cp_idx)
    {
        const ClassRuntime &rt = runtime_[from_class];
        if (cp_idx < rt.fieldCache.size() && rt.fieldCache[cp_idx])
            return *rt.fieldCache[cp_idx];
        return resolveFieldSlow(from_class, cp_idx);
    }

    /** Resolve a Method/InterfaceMethodRef; cached per cp slot. */
    const CallRef &
    resolveCall(uint16_t from_class, uint16_t cp_idx)
    {
        const ClassRuntime &rt = runtime_[from_class];
        if (cp_idx < rt.callCache.size() && rt.callCache[cp_idx])
            return *rt.callCache[cp_idx];
        return resolveCallSlow(from_class, cp_idx);
    }

    /** Exact static-dispatch target of a resolved call. */
    MethodId staticTarget(const CallRef &ref) const;

    /** Virtual dispatch from the receiver's dynamic class; memoised. */
    MethodId virtualTarget(uint16_t receiver_class, const CallRef &ref);

    Value
    getStatic(const FieldSlot &fs) const
    {
        NSE_ASSERT(fs.isStatic, "getStatic on instance slot");
        return runtime_[fs.ownerClass].statics[fs.slot];
    }

    void
    setStatic(const FieldSlot &fs, Value v)
    {
        NSE_ASSERT(fs.isStatic, "setStatic on instance slot");
        if ((v.isInt() && fs.kind != TypeKind::Int) ||
            (v.isRef() && fs.kind != TypeKind::Ref)) {
            fatal("static field kind mismatch");
        }
        runtime_[fs.ownerClass].statics[fs.slot] = v;
    }

    /** Number of distinct symbolic references resolved so far. */
    uint64_t resolutionCount() const { return resolutions_; }

  private:
    struct ClassRuntime
    {
        bool prepared = false;
        /** Static field storage and name->slot map. */
        std::vector<Value> statics;
        std::map<std::string, uint16_t> staticSlots;
        /** Instance layout: name->slot across the super chain. */
        std::map<std::string, uint16_t> instanceSlots;
        size_t instanceCount = 0;
        /**
         * Lazy resolution caches, flat-indexed by constant-pool slot so
         * the interpreter's per-execution lookups are O(1) array loads.
         * unique_ptr keeps returned references stable across growth.
         */
        std::vector<std::unique_ptr<FieldSlot>> fieldCache;
        std::vector<std::unique_ptr<CallRef>> callCache;
    };

    void prepare(uint16_t class_idx);
    const FieldSlot &resolveFieldSlow(uint16_t from_class,
                                      uint16_t cp_idx);
    const CallRef &resolveCallSlow(uint16_t from_class, uint16_t cp_idx);

    const Program &prog_;
    std::vector<ClassRuntime> runtime_;
    /** (receiver class << 32 | call-site token) -> dispatch target. */
    std::unordered_map<uint64_t, MethodId> dispatchCache_;
    uint32_t nextToken_ = 0;
    uint64_t resolutions_ = 0;
};

} // namespace nse

#endif // NSE_VM_LINKER_H
