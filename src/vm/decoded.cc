#include "vm/decoded.h"

#include "support/error.h"

namespace nse
{

namespace
{

bool
isPush(Opcode op)
{
    return op == Opcode::PUSH_I8 || op == Opcode::PUSH_I32;
}

/** True when the decoded op is a (base) branch opcode. */
bool
isBranchDOp(DOp op)
{
    return static_cast<size_t>(op) < kNumOpcodes &&
           isBranch(static_cast<Opcode>(op));
}

/**
 * Lower verified.insts[i] one-to-one. Branch operands become
 * instruction indices in the *original* index space (the fused stream
 * remaps them afterwards); LDC specializes on the entry's tag; NEW
 * pre-resolves its class index (a failed lookup stays a runtime fatal,
 * preserving lazy-resolution semantics for NEW sites that never run).
 */
DInst
lowerOne(const Program &prog, const ClassFile &cf,
         const VerifiedMethod &vm, size_t i, uint32_t bdc)
{
    const Instruction &inst = vm.insts[i];
    const OpcodeInfo &info = opcodeInfo(inst.op);
    DInst d;
    d.op = static_cast<DOp>(static_cast<uint8_t>(inst.op));
    d.count = 1;
    d.cost = info.cycleCost;
    if (bdc && (isBranch(inst.op) || isReturn(inst.op)))
        d.cost += bdc;
    if (info.operand == OperandKind::Branch)
        d.a = static_cast<int32_t>(
            vm.indexOf(static_cast<uint32_t>(inst.operand)));
    else if (info.operand != OperandKind::None)
        d.a = inst.operand;

    if (inst.op == Opcode::LDC) {
        // The verifier guarantees the tag is Integer or String.
        const CpEntry &e =
            cf.cpool.at(static_cast<uint16_t>(inst.operand));
        if (e.tag == CpTag::Integer) {
            auto v = static_cast<uint64_t>(e.value);
            d.op = DOp::LdcInt;
            d.a = static_cast<int32_t>(static_cast<uint32_t>(v));
            d.b = static_cast<int32_t>(static_cast<uint32_t>(v >> 32));
        } else {
            d.op = DOp::LdcStr;
        }
    } else if (inst.op == Opcode::NEW) {
        const std::string &cls_name =
            cf.cpool.className(static_cast<uint16_t>(inst.operand));
        d.b = prog.classIndex(cls_name);
    }
    return d;
}

} // namespace

DecodedMethod
decodeMethod(const Program &prog, MethodId id, const VerifiedMethod &vm,
             uint32_t block_delimiter_cost)
{
    const ClassFile &cf = prog.classAt(id.classIdx);
    DecodedMethod out;
    out.verified = vm;
    out.maxLocals = prog.method(id).maxLocals;
    const std::vector<Instruction> &ins = out.verified.insts;
    size_t n = ins.size();

    out.plain.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.plain.push_back(lowerOne(prog, cf, out.verified, i,
                                     block_delimiter_cost));

    // Branch-target map: a fused group may *begin* at a target (a jump
    // re-enters the whole group) but never contain one in its interior
    // (a jump would skip part of the group's effect).
    std::vector<uint8_t> is_target(n, 0);
    for (size_t i = 0; i < n; ++i) {
        if (isBranch(ins[i].op))
            is_target[out.verified.indexOf(
                static_cast<uint32_t>(ins[i].operand))] = 1;
    }
    auto interior_free = [&](size_t i, size_t k) {
        for (size_t c = 1; c < k; ++c)
            if (is_target[i + c])
                return false;
        return true;
    };
    auto cost_of = [&](size_t j) {
        return opcodeInfo(ins[j].op).cycleCost;
    };

    // Greedy longest-first fusion. Components are pure stack/local
    // ops — never branches, returns, invokes, or anything that can
    // observe the clock — so summing their costs into one charge and
    // one budget check is exact at every instruction-group boundary.
    std::vector<int32_t> orig_to_fast(n, -1);
    size_t i = 0;
    while (i < n) {
        orig_to_fast[i] = static_cast<int32_t>(out.fast.size());
        if (i + 4 <= n && ins[i].op == Opcode::ILOAD &&
            isPush(ins[i + 1].op) && ins[i + 2].op == Opcode::IADD &&
            ins[i + 3].op == Opcode::ISTORE &&
            ins[i + 3].operand == ins[i].operand &&
            interior_free(i, 4)) {
            DInst d;
            d.op = DOp::IncLocal;
            d.count = 4;
            d.cost = cost_of(i) + cost_of(i + 1) + cost_of(i + 2) +
                     cost_of(i + 3);
            d.a = ins[i].operand;
            d.b = ins[i + 1].operand;
            out.fast.push_back(d);
            i += 4;
            continue;
        }
        if (i + 3 <= n && ins[i].op == Opcode::ILOAD &&
            isPush(ins[i + 1].op) && ins[i + 2].op == Opcode::IADD &&
            interior_free(i, 3)) {
            DInst d;
            d.op = DOp::LoadAddConst;
            d.count = 3;
            d.cost = cost_of(i) + cost_of(i + 1) + cost_of(i + 2);
            d.a = ins[i].operand;
            d.b = ins[i + 1].operand;
            out.fast.push_back(d);
            i += 3;
            continue;
        }
        if (i + 3 <= n && ins[i].op == Opcode::ILOAD &&
            ins[i + 1].op == Opcode::ILOAD &&
            (ins[i + 2].op == Opcode::IADD ||
             ins[i + 2].op == Opcode::ISUB ||
             ins[i + 2].op == Opcode::IMUL) &&
            interior_free(i, 3)) {
            DInst d;
            d.op = ins[i + 2].op == Opcode::IADD   ? DOp::Load2Add
                   : ins[i + 2].op == Opcode::ISUB ? DOp::Load2Sub
                                                   : DOp::Load2Mul;
            d.count = 3;
            d.cost = cost_of(i) + cost_of(i + 1) + cost_of(i + 2);
            d.a = ins[i].operand;
            d.b = ins[i + 1].operand;
            out.fast.push_back(d);
            i += 3;
            continue;
        }
        if (i + 2 <= n && interior_free(i, 2)) {
            // Two-instruction fusions, most frequent pairs first.
            DOp op = DOp::NOP;
            int32_t a = 0, b = 0;
            if (isPush(ins[i].op) && ins[i + 1].op == Opcode::ISTORE) {
                op = DOp::StoreConst;
                a = ins[i + 1].operand;
                b = ins[i].operand;
            } else if (isPush(ins[i].op) &&
                       ins[i + 1].op == Opcode::IADD) {
                op = DOp::AddConst;
                b = ins[i].operand;
            } else if (ins[i].op == Opcode::IADD &&
                       ins[i + 1].op == Opcode::ISTORE) {
                op = DOp::AddStore;
                a = ins[i + 1].operand;
            } else if (ins[i].op == Opcode::ILOAD &&
                       ins[i + 1].op == Opcode::IALOAD) {
                op = DOp::LoadIdxALoad;
                a = ins[i].operand;
            } else if (ins[i].op == Opcode::GETSTATIC &&
                       ins[i + 1].op == Opcode::ILOAD) {
                op = DOp::GsLoad;
                a = ins[i].operand;
                b = ins[i + 1].operand;
            } else if (ins[i].op == Opcode::ILOAD &&
                       ins[i + 1].op == Opcode::GETSTATIC) {
                op = DOp::LoadGs;
                a = ins[i].operand;
                b = ins[i + 1].operand;
            } else if (ins[i].op == Opcode::ISTORE &&
                       ins[i + 1].op == Opcode::GOTO) {
                // The only fusion ending in a branch: its target heads
                // the next group, and the delimiter cost rides along.
                op = DOp::StoreGoto;
                a = ins[i].operand;
                b = static_cast<int32_t>(out.verified.indexOf(
                    static_cast<uint32_t>(ins[i + 1].operand)));
            } else if (ins[i].op == Opcode::ILOAD &&
                       ins[i + 1].op == Opcode::ILOAD) {
                op = DOp::LoadLoad;
                a = ins[i].operand;
                b = ins[i + 1].operand;
            }
            if (op != DOp::NOP) {
                DInst d;
                d.op = op;
                d.count = 2;
                d.cost = cost_of(i) + cost_of(i + 1);
                if (op == DOp::StoreGoto)
                    d.cost += block_delimiter_cost;
                d.a = a;
                d.b = b;
                out.fast.push_back(d);
                i += 2;
                continue;
            }
        }
        out.fast.push_back(lowerOne(prog, cf, out.verified, i,
                                    block_delimiter_cost));
        ++i;
    }

    // Remap fused-stream branch operands into fused indices. Targets
    // always head a group, so the map is defined exactly where needed.
    for (DInst &d : out.fast) {
        if (isBranchDOp(d.op)) {
            int32_t mapped = orig_to_fast[static_cast<size_t>(d.a)];
            NSE_ASSERT(mapped >= 0, "branch into a fused interior in ",
                       prog.methodLabel(id));
            d.a = mapped;
        } else if (d.op == DOp::StoreGoto) {
            int32_t mapped = orig_to_fast[static_cast<size_t>(d.b)];
            NSE_ASSERT(mapped >= 0, "branch into a fused interior in ",
                       prog.methodLabel(id));
            d.b = mapped;
        }
    }
    return out;
}

const DecodedMethod &
DecodedCache::get(MethodId id) const
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = cache_.find(id);
        if (it != cache_.end())
            return *it->second;
    }
    // Verify + decode outside the lock (they can be expensive); a
    // racing duplicate loses the emplace and is discarded.
    auto dm = std::make_unique<DecodedMethod>(decodeMethod(
        prog_, id, verifier_.verifyMethod(id), blockDelimiterCost_));
    std::lock_guard<std::mutex> lock(mu_);
    return *cache_.emplace(id, std::move(dm)).first->second;
}

} // namespace nse
