/**
 * @file
 * Class-file and bytecode verification.
 *
 * Implements the paper's five-step verification model (§3.1.1) for the
 * substrate:
 *   steps 1-2  class-file structure and global data — verifyClass()
 *              (runnable as soon as a class's global data arrives);
 *   step 3     per-method checks as each method transfers —
 *              verifyMethod(): decode validity, branch alignment,
 *              operand ranges, and a dataflow pass (abstract
 *              interpretation over {Int, Ref} with merge at joins) that
 *              rejects stack underflow, type confusion, reads of
 *              uninitialised locals, and falling off the code;
 *   step 4     cross-class dependence checks at first execution —
 *              performed by the Linker's resolution (signatures are
 *              checked when symbolic references are resolved).
 *
 * Verification failures raise VerifyError.
 */

#ifndef NSE_VM_VERIFIER_H
#define NSE_VM_VERIFIER_H

#include <cstdint>
#include <set>
#include <vector>

#include "bytecode/instruction.h"
#include "program/program.h"
#include "support/error.h"

namespace nse
{

/** Raised when a class file or method fails verification. */
class VerifyError : public FatalError
{
  public:
    explicit VerifyError(const std::string &msg) : FatalError(msg) {}
};

/** Abstract kind of a local slot at a program point. */
enum class LocalKind : uint8_t
{
    Int,
    Ref,
    Unset,
};

/** Decoded, verified method body ready for interpretation. */
struct VerifiedMethod
{
    std::vector<Instruction> insts;
    /** code-byte offset -> instruction index; -1 for mid-instruction. */
    std::vector<int32_t> offsetToIndex;
    /** Operand-stack high-water mark. */
    uint16_t maxStack = 0;
    /** Operand-stack depth on entry to each instruction; -1 for
     *  instructions the dataflow never reached (unreachable code is
     *  rejected earlier, so in practice always >= 0). */
    std::vector<int32_t> stackDepthIn;
    /** Local-slot kinds on entry to each instruction (the dataflow
     *  facts the procedure-splitting pass consumes). */
    std::vector<std::vector<LocalKind>> localsIn;

    /** Instruction index for a branch-target byte offset. */
    size_t indexOf(uint32_t offset) const;
};

/**
 * Add constant-pool entry `idx` and every entry it transitively
 * references (Class/String -> Utf8, member refs -> Class + NameAndType
 * -> Utf8) to `out`. Index 0 is ignored.
 */
void cpClosure(const ConstantPool &cp, uint16_t idx,
               std::set<uint16_t> &out);

/**
 * The constant-pool entries a method requires before its first
 * execution: the closure of its name and descriptor strings plus, for
 * bytecode methods, the closure of every entry its decoded code
 * references. This is the verifier's decode-level dependency
 * extraction, shared by global-data partitioning (which materializes
 * the set as the method's GMD chunk) and the non-strict-safety
 * auditor (which proves each entry arrives no later than the method's
 * delimiter). Native methods contribute only name/descriptor.
 */
std::set<uint16_t> methodCpDependencies(const ClassFile &cf,
                                        const MethodInfo &m);

/** Verifies classes and methods of one program. */
class Verifier
{
  public:
    explicit Verifier(const Program &prog) : prog_(prog) {}

    /**
     * Steps 1-2: validate one class's global data: constant-pool
     * cross-references and tags, field/method name and descriptor
     * indices, interface and superclass entries.
     */
    void verifyClass(uint16_t class_idx) const;

    /** Step 3 (+ local parts of 4): verify and decode one method. */
    VerifiedMethod verifyMethod(MethodId id) const;

    /** Verify every class and method; for tests and the loader. */
    void verifyAll() const;

  private:
    const Program &prog_;
};

} // namespace nse

#endif // NSE_VM_VERIFIER_H
