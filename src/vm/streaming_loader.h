/**
 * @file
 * The non-strict streaming class loader (paper §3 and §3.1).
 *
 * A strict JVM needs the whole class file before it can do anything.
 * This loader consumes the serialized byte stream *as it arrives*:
 *  - once the global data is complete it parses it and runs
 *    verification steps 1–2 (class-file structure and global data);
 *  - each time a method's delimiter arrives the method is parsed,
 *    decoded, and structurally checked (step 3's local checks), and
 *    becomes available for execution;
 *  - dataflow and cross-class checks (the rest of step 3 and step 4)
 *    remain with the Verifier/Linker at first execution, as in the
 *    paper's incremental model.
 *
 * The transfer simulator works from byte layouts; this loader is the
 * functional counterpart proving the byte stream really is
 * incrementally consumable at exactly the offsets the layouts use —
 * the tests cross-check the two.
 */

#ifndef NSE_VM_STREAMING_LOADER_H
#define NSE_VM_STREAMING_LOADER_H

#include <cstdint>
#include <optional>
#include <vector>

#include "classfile/classfile.h"

namespace nse
{

/** Loader lifecycle. */
enum class LoadPhase : uint8_t
{
    AwaitingGlobalData, ///< header/pool/fields/attrs still in flight
    LoadingMethods,     ///< global data verified; methods arriving
    Complete,           ///< every declared method has arrived
};

/** Incremental, non-strict loader for one serialized class file. */
class StreamingLoader
{
  public:
    StreamingLoader() = default;

    /**
     * Append newly arrived bytes; parses as far as the stream allows.
     * Returns the number of methods that became available during this
     * call. fatal()s on malformed streams (bad magic, bad delimiter,
     * structural verification failure).
     */
    size_t feed(const uint8_t *data, size_t n);
    size_t feed(const std::vector<uint8_t> &bytes);

    LoadPhase phase() const { return phase_; }

    /** True once verification steps 1-2 have run. */
    bool globalDataVerified() const
    {
        return phase_ != LoadPhase::AwaitingGlobalData;
    }

    /** Methods fully arrived (delimiter seen), decoded and checked. */
    size_t methodsReady() const { return loaded_.methods.size(); }

    /** Total methods the class declares; 0 before the global data. */
    size_t methodsDeclared() const { return methodCount_; }

    bool complete() const { return phase_ == LoadPhase::Complete; }

    /** Bytes consumed so far (== bytes fed). */
    size_t bytesReceived() const { return buffer_.size(); }

    /** Stream offset at which the global data completed (0 before). */
    size_t globalDataEnd() const { return globalDataEnd_; }

    /** Stream offset at which method i's delimiter arrived. */
    size_t methodEndOffset(size_t i) const;

    /**
     * The partially (or fully) loaded class: global data plus every
     * method that has arrived so far. Invalid to call before the
     * global data is verified.
     */
    const ClassFile &classFile() const;

  private:
    void tryParseGlobalData();
    size_t tryParseMethods();

    std::vector<uint8_t> buffer_;
    LoadPhase phase_ = LoadPhase::AwaitingGlobalData;
    ClassFile loaded_;
    uint16_t methodCount_ = 0;
    size_t globalDataEnd_ = 0;
    size_t parsePos_ = 0;
    std::vector<size_t> methodEnds_;
};

} // namespace nse

#endif // NSE_VM_STREAMING_LOADER_H
