#include "vm/natives.h"

#include "support/error.h"

namespace nse
{

void
NativeRegistry::add(std::string_view qualified_name, NativeFn fn,
                    uint64_t cycle_cost)
{
    natives_[std::string(qualified_name)] =
        NativeMethod{std::move(fn), cycle_cost};
}

void
NativeRegistry::setCost(std::string_view qualified_name,
                        uint64_t cycle_cost)
{
    auto it = natives_.find(qualified_name);
    if (it == natives_.end())
        fatal("setCost on unknown native: ", qualified_name);
    it->second.cycleCost = cycle_cost;
}

bool
NativeRegistry::has(std::string_view qualified_name) const
{
    return natives_.count(qualified_name) > 0;
}

const NativeMethod &
NativeRegistry::lookup(std::string_view qualified_name) const
{
    auto it = natives_.find(qualified_name);
    if (it == natives_.end())
        fatal("call to unregistered native method: ", qualified_name);
    return it->second;
}

void
NativeRegistry::forEach(
    const std::function<void(const std::string &, uint64_t)> &fn) const
{
    for (const auto &[name, native] : natives_)
        fn(name, native.cycleCost);
}

NativeRegistry
standardNatives()
{
    NativeRegistry reg;

    reg.add("Sys.print",
            [](NativeContext &ctx, const std::vector<Value> &args) {
                ctx.output.push_back(args.at(0).asInt());
                return Value::makeInt(0);
            },
            9'000);

    reg.add("Sys.printChar",
            [](NativeContext &ctx, const std::vector<Value> &args) {
                ctx.output.push_back(args.at(0).asInt());
                return Value::makeInt(0);
            },
            7'000);

    reg.add("Sys.printArr",
            [](NativeContext &ctx, const std::vector<Value> &args) {
                Ref arr = args.at(0).asRef();
                int64_t len = ctx.heap.arrayLength(arr);
                for (int64_t i = 0; i < len; ++i)
                    ctx.output.push_back(ctx.heap.arrayGet(arr, i).asInt());
                return Value::makeInt(0);
            },
            20'000);

    reg.add("Gfx.drawDisk",
            [](NativeContext &ctx, const std::vector<Value> &args) {
                // Record the draw so applet output is verifiable.
                ctx.output.push_back(args.at(0).asInt() * 1'000'000 +
                                     args.at(1).asInt() * 1'000 +
                                     args.at(2).asInt());
                return Value::makeInt(0);
            },
            1'200'000);

    reg.add("Gfx.clear",
            [](NativeContext &ctx, const std::vector<Value> &) {
                ctx.output.push_back(-1);
                return Value::makeInt(0);
            },
            600'000);

    reg.add("File.writeBlock",
            [](NativeContext &ctx, const std::vector<Value> &args) {
                Ref arr = args.at(0).asRef();
                int64_t len = ctx.heap.arrayLength(arr);
                // Rolling hash wraps by design; keep the wrap in
                // unsigned space (signed overflow is UB).
                uint64_t sum = 0;
                for (int64_t i = 0; i < len; ++i)
                    sum = sum * 31 +
                          static_cast<uint64_t>(
                              ctx.heap.arrayGet(arr, i).asInt());
                ctx.output.push_back(static_cast<int64_t>(sum));
                return Value::makeInt(0);
            },
            60'000);

    reg.add("File.readByte",
            [](NativeContext &, const std::vector<Value> &args) {
                // Deterministic pseudo file contents with realistic
                // redundancy (repeating ramps plus slow drift), so
                // compression workloads find genuine matches.
                auto i = static_cast<uint64_t>(args.at(0).asInt());
                uint64_t b = (i % 64) * 3 + (i / 256);
                if (i % 97 == 0)
                    b ^= (i * 0x9e3779b9ULL) >> 11; // occasional noise
                return Value::makeInt(static_cast<int64_t>(b & 0xff));
            },
            12'000);

    reg.add("Sys.argCount",
            [](NativeContext &ctx, const std::vector<Value> &) {
                return Value::makeInt(
                    static_cast<int64_t>(ctx.input.size()));
            },
            4'000);

    reg.add("Sys.arg",
            [](NativeContext &ctx, const std::vector<Value> &args) {
                int64_t idx = args.at(0).asInt();
                if (idx < 0 ||
                    static_cast<size_t>(idx) >= ctx.input.size()) {
                    fatal("Sys.arg index out of range: ", idx);
                }
                return Value::makeInt(
                    ctx.input[static_cast<size_t>(idx)]);
            },
            4'000);

    return reg;
}

} // namespace nse
