/**
 * @file
 * The bytecode interpreter with a cycle cost model and non-strict
 * execution hooks.
 *
 * The interpreter really executes programs (workload outputs are
 * checked in tests) while advancing a cycle clock: each bytecode costs
 * its opcode's interpreter cycles, and native calls cost their
 * registered amounts — this is the paper's "CPI x bytecodes" timing
 * model, derived instead of assumed.
 *
 * Two hooks integrate the co-simulation and profiling layers:
 *  - the *first-use hook* fires before the first execution of every
 *    method and may advance the clock (this is where the transfer
 *    engine stalls execution until the method's delimiter arrives);
 *  - the *instruction hook* observes every executed instruction
 *    (first-use profiling, executed-bytes accounting).
 *
 * Three dispatch strategies execute the same semantics bit-exactly:
 * computed-goto direct threading over the pre-decoded IR (vm/decoded.h;
 * GCC/Clang), a portable switch over the same decoded IR, and the
 * classic one-Instruction-at-a-time switch retained as the equivalence
 * oracle. Define NSE_FORCE_SWITCH_DISPATCH at build time to compile
 * out the computed-goto loop (differential testing / odd compilers).
 */

#ifndef NSE_VM_INTERPRETER_H
#define NSE_VM_INTERPRETER_H

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "program/program.h"
#include "vm/decoded.h"
#include "vm/heap.h"
#include "vm/linker.h"
#include "vm/natives.h"
#include "vm/verifier.h"

namespace nse
{

/** How Vm::run() dispatches instructions. Results are bit-identical
 *  across all modes; only wall-clock speed differs. */
enum class DispatchMode : uint8_t
{
    /** Threaded when the compiler supports it, else Switch. */
    Auto,
    /** Computed-goto direct threading on the decoded IR. */
    Threaded,
    /** Portable switch on the decoded IR. */
    Switch,
    /** The original per-Instruction switch (the oracle). */
    Classic,
};

/** Interpreter limits and switches. */
struct VmOptions
{
    /** Safety valve against runaway workloads. */
    uint64_t maxBytecodes = 400'000'000;
    /**
     * Extra cycles charged at every branch/return (basic-block
     * boundary), modelling delimiter checks when non-strictness is
     * enforced at basic-block rather than method granularity
     * (paper §4's rejected design; used by the granularity ablation).
     */
    uint32_t blockDelimiterCost = 0;
    DispatchMode dispatch = DispatchMode::Auto;
};

/** Result of one complete program execution. */
struct VmResult
{
    /** Final clock: execution cycles plus hook-injected stalls. */
    uint64_t clock = 0;
    /** Pure execution cycles (opcode + native costs, no stalls). */
    uint64_t execCycles = 0;
    /** Dynamic bytecode count. */
    uint64_t bytecodes = 0;
    uint64_t nativeCalls = 0;
    /** Distinct methods that executed at least once. */
    uint64_t methodsExecuted = 0;
    /** Observable program output (Sys.print / Gfx / File natives). */
    std::vector<int64_t> output;

    /** Average cycles per bytecode — the paper's CPI metric. */
    double
    cpi() const
    {
        return bytecodes ? static_cast<double>(execCycles) /
                               static_cast<double>(bytecodes)
                         : 0.0;
    }
};

/** One program execution. Construct, configure hooks, run() once. */
class Vm
{
  public:
    /**
     * @param prog    the program to execute
     * @param natives native bodies (see standardNatives())
     * @param input   workload input stream, readable via Sys natives
     * @param decoded optional shared decode cache (SimContext::decoded)
     *                — used when its delimiter cost matches the
     *                options; otherwise the Vm decodes privately
     */
    Vm(const Program &prog, const NativeRegistry &natives,
       std::vector<int64_t> input = {}, VmOptions opts = {},
       const DecodedCache *decoded = nullptr);

    /**
     * Called before the first execution of each method with the current
     * clock; returns the (>=) clock at which execution may proceed.
     */
    using FirstUseHook = std::function<uint64_t(MethodId, uint64_t)>;

    /** Called after each instruction's cost is charged. */
    using InstrHook =
        std::function<void(MethodId, const Instruction &, uint64_t)>;

    void setFirstUseHook(FirstUseHook hook) { firstUse_ = std::move(hook); }
    void setInstructionHook(InstrHook hook) { instr_ = std::move(hook); }

    /** Execute from the program entry point to completion. */
    VmResult run();

    Heap &heap() { return heap_; }
    Linker &linker() { return linker_; }

  private:
    struct Frame
    {
        MethodId id;
        const VerifiedMethod *code;
        std::vector<Value> locals;
        std::vector<Value> stack;
        size_t pc = 0;
    };

    /** Decoded-IR frame: locals + operand stack live in arena_. */
    struct DFrame
    {
        MethodId id;
        const DecodedMethod *dm;
        const DInst *code;
        /** arena_ offset of the locals (stack follows at stackBase). */
        uint32_t base = 0;
        uint32_t stackBase = 0;
        uint32_t pc = 0;
        int32_t sp = 0;
    };

    /** Per-target invoke memo (dense-indexed by method). */
    struct Callee
    {
        const DecodedMethod *dm = nullptr;
        const NativeMethod *native = nullptr;
        TypeKind nativeRet = TypeKind::Void;
        bool isNative = false;
        bool known = false;
    };

    void step();
    void charge(uint64_t cycles);
    void noteFirstUse(MethodId id);
    const VerifiedMethod &codeOf(MethodId id);
    void pushFrame(MethodId id, std::vector<Value> args);
    void invoke(Frame &f, const Instruction &inst, bool is_virtual);
    void callNative(MethodId id, std::vector<Value> args,
                    Frame *caller);
    Ref internString(uint16_t class_idx, uint16_t cp_idx);

    Value popVal(Frame &f);
    int64_t popInt(Frame &f);
    Ref popRef(Frame &f);
    void push(Frame &f, Value v);

    /** Dense method index for the seen_ bitmap / callee memo. */
    size_t denseIndex(MethodId id) const
    {
        return methodBase_[id.classIdx] + id.methodIdx;
    }

    void runClassic();
    void runDecoded(bool threaded);
    void pushDFrame(MethodId id, const DecodedMethod &dm,
                    size_t args_off, uint32_t n_args);
    void doInvoke(uint16_t cp_idx, bool is_virtual);
    /** kHooked compiles the instruction-hook dispatch in or out, so
     *  unobserved runs carry no per-fetch hook check at all. */
    template <bool kHooked> void execThreaded();
    template <bool kHooked> void execSwitch();

    const Program &prog_;
    const NativeRegistry &natives_;
    std::vector<int64_t> input_;
    VmOptions opts_;

    Verifier verifier_;
    Linker linker_;
    Heap heap_;

    FirstUseHook firstUse_;
    InstrHook instr_;

    std::map<MethodId, VerifiedMethod> codeCache_;
    std::map<std::pair<uint16_t, uint16_t>, Ref> stringCache_;

    /** First-use bitmap over dense method indices (replaces a set). */
    std::vector<uint32_t> methodBase_;
    std::vector<uint8_t> seen_;
    uint64_t seenCount_ = 0;

    std::vector<Frame> frames_;

    /** Decoded-dispatch state. */
    const DecodedCache *decoded_ = nullptr;
    std::unique_ptr<DecodedCache> ownedDecoded_;
    std::vector<Callee> callees_;
    std::vector<DFrame> dframes_;
    std::vector<Value> arena_;
    size_t arenaTop_ = 0;

    VmResult result_;
    bool ran_ = false;
};

} // namespace nse

#endif // NSE_VM_INTERPRETER_H
