/**
 * @file
 * The VM heap: class instances and int/ref arrays.
 *
 * Allocation is bump-style with no collection — mobile-program runs in
 * this study are short and bounded, and determinism matters more than
 * footprint. Handles are dense indices, 0 reserved for null.
 */

#ifndef NSE_VM_HEAP_H
#define NSE_VM_HEAP_H

#include <cstdint>
#include <vector>

#include "support/error.h"
#include "vm/value.h"

namespace nse
{

/** Heap object discriminator. */
enum class ObjKind : uint8_t
{
    Instance,
    IntArray,
    RefArray,
};

/** One heap cell: an instance (field slots) or an array. */
struct HeapObject
{
    ObjKind kind = ObjKind::Instance;
    /** Defining class index for instances; unused for arrays. */
    uint16_t classIdx = 0;
    /** Field slots (instances) or elements (arrays). */
    std::vector<Value> slots;
};

/** Growable heap of tagged objects. */
class Heap
{
  public:
    Heap();

    /** Allocate an instance with `n_fields` zero/null-initialised slots. */
    Ref allocInstance(uint16_t class_idx, size_t n_fields);

    /** Allocate an int array of the given length (zero filled). */
    Ref allocIntArray(size_t length);

    /** Allocate a reference array of the given length (null filled). */
    Ref allocRefArray(size_t length);

    /** Object accessor; fatal()s on null or dangling handles.
     *  Inline: these sit on the interpreter's per-instruction path. */
    HeapObject &
    deref(Ref ref)
    {
        if (ref == kNullRef)
            fatal("null dereference");
        if (ref >= objects_.size())
            fatal("dangling heap handle: ", ref);
        return objects_[ref];
    }

    const HeapObject &
    deref(Ref ref) const
    {
        if (ref == kNullRef)
            fatal("null dereference");
        if (ref >= objects_.size())
            fatal("dangling heap handle: ", ref);
        return objects_[ref];
    }

    /** Bounds-checked array element access. */
    Value
    arrayGet(Ref ref, int64_t index) const
    {
        return checkedArray(ref, index)
            .slots[static_cast<size_t>(index)];
    }

    void
    arraySet(Ref ref, int64_t index, Value v)
    {
        const HeapObject &obj = checkedArray(ref, index);
        bool want_int = obj.kind == ObjKind::IntArray;
        if (want_int != v.isInt())
            fatal("array element kind mismatch");
        const_cast<HeapObject &>(obj)
            .slots[static_cast<size_t>(index)] = v;
    }

    /** Array length; fatal()s when ref is not an array. */
    int64_t
    arrayLength(Ref ref) const
    {
        const HeapObject &obj = deref(ref);
        if (obj.kind == ObjKind::Instance)
            fatal("arraylength on a non-array object");
        return static_cast<int64_t>(obj.slots.size());
    }

    size_t objectCount() const { return objects_.size() - 1; }

  private:
    const HeapObject &
    checkedArray(Ref ref, int64_t index) const
    {
        const HeapObject &obj = deref(ref);
        if (obj.kind == ObjKind::Instance)
            fatal("array access on a non-array object");
        if (index < 0 ||
            static_cast<size_t>(index) >= obj.slots.size()) {
            fatal("array index out of bounds: ", index, " of ",
                  obj.slots.size());
        }
        return obj;
    }

    std::vector<HeapObject> objects_;
};

} // namespace nse

#endif // NSE_VM_HEAP_H
