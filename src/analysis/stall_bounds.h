/**
 * @file
 * Static stall prover: turn the use-distance analysis (dataflow.h)
 * plus a concrete (layout, schedule, link) triple into provable
 * lower/upper bounds on the replay's measured stall cycles.
 *
 * The measured quantity being bounded is `SimResult::stallCycles` of
 * a parallel-mode replay with runahead disabled: the sum over
 * first-use events of `resume - clock`, including the entry method's
 * initial wait (the invocation latency). The bounds sandwich it:
 *
 *     report.runLowerBound <= stallCycles <= report.runUpperBound
 *
 *  - Upper side: each may-used method t sits at `availOffset(t)` on
 *    its stream; every byte of every stream has arrived by the
 *    work-conserving drain bound (max scheduled start + whole-layout
 *    transfer time), or the tighter per-stream equal-share bound when
 *    no start can be queued behind the concurrency limit. A use of t
 *    fires at exec clock >= mayMin(t), so its wait costs at most
 *    latestArrival(t) - mayMin(t). Summing over the may set bounds
 *    the run (traced first-use events are a subset of the may set —
 *    the property the sandwich bench and property tests pin).
 *  - Lower side: a must-used method t with a finite mustMax fires its
 *    hook at exec clock <= mustMax(t) on every terminating run. Its
 *    stream cannot start before min(scheduled start, earliest
 *    possible demand-fetch = min mayMin over the stream's may-used
 *    methods), and bytes cannot beat the full nominal rate, so t's
 *    offset cannot arrive before earliestArrival(t). Since the hook's
 *    wall clock is execClock + (stalls so far), the run's total stall
 *    is >= earliestArrival(t) - mustMax(t) for *each* such t — the
 *    bound is the max over them, not the sum.
 *
 * Both sides absorb the transfer engine's double-arithmetic epsilon
 * with a one-cycle safety margin. A method whose lower bound is
 * positive at the nominal link is a *provable stall*: no schedule
 * honoring the layout can hide that wait, which the auditor surfaces
 * as a `provable-stall` Warning (machine-readable in nse-audit-v1).
 */

#ifndef NSE_ANALYSIS_STALL_BOUNDS_H
#define NSE_ANALYSIS_STALL_BOUNDS_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/audit.h"
#include "analysis/dataflow.h"
#include "restructure/layout.h"
#include "transfer/link.h"
#include "transfer/schedule.h"

namespace nse
{

/** Everything the prover needs about one configuration. */
struct StallBoundInput
{
    const Program &prog;
    const UseAnalysis &use;
    const TransferLayout &layout;
    const TransferSchedule &schedule;
    const LinkModel &link;
    /** Concurrent-transfer limit the replay runs under (<=0 = none). */
    int parallelLimit = 4;
};

/** Provable bounds for one may-used method. */
struct MethodStallBound
{
    MethodId method;
    std::string label;
    bool mustUsed = false;
    /** Distances from the global use analysis (kDistInf = none). */
    uint64_t mayMin = kDistInf;
    uint64_t mustMax = kDistInf;
    /** Earliest / latest possible arrival of the method's delimiter
     *  offset, in cycles. */
    uint64_t earliestArrival = 0;
    uint64_t latestArrival = 0;
    /** Provable minimum run stall implied by this method (0 unless
     *  must-used with a finite mustMax). */
    uint64_t lowerStall = 0;
    /** Provable maximum wait this method's first use can cost. */
    uint64_t upperStall = 0;
};

/** The proof artifact: per-method bounds plus the run sandwich. */
struct StallBoundReport
{
    std::vector<MethodStallBound> methods;
    /** max over methods of lowerStall. */
    uint64_t runLowerBound = 0;
    /** saturating sum over methods of upperStall. */
    uint64_t runUpperBound = 0;
    /** Methods with lowerStall > 0 (the provable stalls). */
    size_t provableStalls = 0;

    /** Human-readable rendering (one line per nonzero-bound method,
     *  then the run sandwich). */
    std::string render() const;
};

/** Prove bounds for one configuration. */
StallBoundReport computeStallBounds(const StallBoundInput &in);

/**
 * Append one `provable-stall` Warning per method whose lower bound is
 * positive to an audit report (kind AuditDepKind::ProvableStall,
 * needOffset = mustMax deadline, arriveOffset = earliest arrival),
 * updating the severity tallies.
 */
void appendStallDiagnostics(const StallBoundReport &report,
                            AuditReport &audit);

} // namespace nse

#endif // NSE_ANALYSIS_STALL_BOUNDS_H
