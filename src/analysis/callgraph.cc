#include "analysis/callgraph.h"

#include <algorithm>

#include "bytecode/instruction.h"
#include "support/error.h"

namespace nse
{

namespace
{

/** Per-site dispatch table: (receiver class, resolved target) for
 *  every class that understands the site's name+descriptor. */
using DispatchTable = std::vector<std::pair<uint16_t, MethodId>>;

/** Mark every method reachable from entry, dispatching virtual sites
 *  through `targetsOf`. Returns the number of marked methods. */
template <typename TargetsFn>
size_t
markReachable(const CallGraph &cg, const Program &prog,
              std::vector<std::vector<bool>> &reach, TargetsFn targetsOf)
{
    for (auto &row : reach)
        std::fill(row.begin(), row.end(), false);
    size_t count = 0;
    std::vector<MethodId> work{prog.entry()};
    reach[work[0].classIdx][work[0].methodIdx] = true;
    while (!work.empty()) {
        MethodId id = work.back();
        work.pop_back();
        ++count;
        for (const CallSite &site : cg.node(id).sites) {
            for (const MethodId &t : targetsOf(id, site)) {
                if (!reach[t.classIdx][t.methodIdx]) {
                    reach[t.classIdx][t.methodIdx] = true;
                    work.push_back(t);
                }
            }
        }
    }
    return count;
}

} // namespace

CallGraph
buildCallGraph(const Program &prog)
{
    CallGraph cg;
    size_t nc = prog.classCount();
    cg.nodes_.resize(nc);
    cg.rta_.resize(nc);
    cg.cha_.resize(nc);
    for (uint16_t c = 0; c < nc; ++c) {
        size_t nm = prog.classAt(c).methods.size();
        cg.nodes_[c].resize(nm);
        cg.rta_[c].assign(nm, false);
        cg.cha_[c].assign(nm, false);
    }

    // Pass 1: decode bodies; record NEW sites, static resolution, and
    // the full per-site dispatch table (basis of both CHA and RTA).
    std::vector<std::vector<std::vector<DispatchTable>>> dispatch(nc);
    for (uint16_t c = 0; c < nc; ++c)
        dispatch[c].resize(prog.classAt(c).methods.size());
    prog.forEachMethod([&](MethodId id, const ClassFile &cf,
                           const MethodInfo &m) {
        MethodNode &node = cg.nodes_[id.classIdx][id.methodIdx];
        node.native = m.isNative();
        if (node.native)
            return;
        std::vector<Instruction> insts = decodeCode(m.code);
        for (uint32_t i = 0; i < insts.size(); ++i) {
            const Instruction &inst = insts[i];
            if (inst.op == Opcode::NEW) {
                int cidx = prog.classIndex(cf.cpool.className(
                    static_cast<uint16_t>(inst.operand)));
                if (cidx >= 0)
                    node.allocates.push_back(
                        static_cast<uint16_t>(cidx));
                continue;
            }
            if (!isInvoke(inst.op))
                continue;
            CallSite site;
            site.instIndex = i;
            site.cpIdx = static_cast<uint16_t>(inst.operand);
            site.isVirtual = inst.op == Opcode::INVOKEVIRTUAL;
            auto ref = cf.cpool.memberRef(site.cpIdx);
            DispatchTable table;
            if (site.isVirtual) {
                site.staticTarget = prog.resolveVirtual(
                    ref.className, ref.name, ref.descriptor);
                // Receivers are untyped references in this substrate,
                // so any class that understands the message is a
                // dispatch candidate.
                for (uint16_t d = 0; d < nc; ++d) {
                    if (auto t = prog.tryResolveVirtual(d, ref.name,
                                                        ref.descriptor))
                        table.emplace_back(d, *t);
                }
            } else {
                site.staticTarget = prog.resolveStatic(
                    ref.className, ref.name, ref.descriptor);
            }

            // chaTargets: staticTarget first, rest ascending.
            std::set<MethodId> targets;
            for (const auto &[d, t] : table)
                targets.insert(t);
            targets.insert(site.staticTarget);
            site.chaTargets.push_back(site.staticTarget);
            for (const MethodId &t : targets) {
                if (!(t == site.staticTarget))
                    site.chaTargets.push_back(t);
            }
            dispatch[id.classIdx][id.methodIdx].push_back(
                std::move(table));
            node.sites.push_back(std::move(site));
        }
        std::sort(node.allocates.begin(), node.allocates.end());
        node.allocates.erase(std::unique(node.allocates.begin(),
                                         node.allocates.end()),
                             node.allocates.end());
    });

    // Pass 2: RTA fixpoint. Alternate (a) reachability under dispatch
    // restricted to the current instantiated set with (b) growing the
    // set from NEW sites in reachable methods, until neither changes.
    // The final sweep runs with a stable instantiated set, so rta_ is
    // consistent with instantiated_.
    auto rtaTargetsOf = [&](MethodId id,
                            const CallSite &site) -> std::vector<MethodId> {
        if (!site.isVirtual)
            return {site.staticTarget};
        const MethodNode &node = cg.nodes_[id.classIdx][id.methodIdx];
        size_t sidx = static_cast<size_t>(&site - node.sites.data());
        std::set<MethodId> out;
        for (const auto &[d, t] : dispatch[id.classIdx][id.methodIdx][sidx])
            if (cg.instantiated_.count(d))
                out.insert(t);
        return {out.begin(), out.end()};
    };
    bool grew = true;
    while (grew) {
        grew = false;
        cg.rtaCount_ = markReachable(cg, prog, cg.rta_, rtaTargetsOf);
        prog.forEachMethod([&](MethodId id, const ClassFile &,
                               const MethodInfo &) {
            if (!cg.rta_[id.classIdx][id.methodIdx])
                return;
            for (uint16_t cls : cg.node(id).allocates)
                if (cg.instantiated_.insert(cls).second)
                    grew = true;
        });
    }

    // Pass 3: CHA reachability, and per-site rtaTargets under the
    // final instantiated set (chaTargets order, filtered).
    cg.chaCount_ = markReachable(
        cg, prog, cg.cha_,
        [](MethodId, const CallSite &site) -> const std::vector<MethodId> & {
            return site.chaTargets;
        });
    prog.forEachMethod([&](MethodId id, const ClassFile &,
                           const MethodInfo &m) {
        if (m.isNative())
            return;
        MethodNode &node = cg.nodes_[id.classIdx][id.methodIdx];
        for (size_t s = 0; s < node.sites.size(); ++s) {
            CallSite &site = node.sites[s];
            if (!site.isVirtual) {
                site.rtaTargets = site.chaTargets;
                continue;
            }
            std::set<MethodId> live;
            for (const auto &[d, t] : dispatch[id.classIdx][id.methodIdx][s])
                if (cg.instantiated_.count(d))
                    live.insert(t);
            for (const MethodId &t : site.chaTargets)
                if (live.count(t))
                    site.rtaTargets.push_back(t);
        }
    });
    return cg;
}

} // namespace nse
