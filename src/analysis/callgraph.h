/**
 * @file
 * Whole-program call graph with CHA and RTA virtual-dispatch
 * resolution.
 *
 * The per-block `calls` vector in cfg.h resolves each virtual site to
 * a single target from the static receiver class — sound for the
 * estimator's traversal order but blind to dispatch: it can neither
 * enumerate the other overriders a site may reach (needed for
 * soundness arguments) nor prune targets whose receiver class is
 * never instantiated (needed for precision). This module builds both
 * views once per program:
 *
 *  - CHA (class hierarchy analysis): a virtual site reaches every
 *    method a class in the program could dispatch it to. Because the
 *    verifier tracks only {Int, Ref} — receivers are untyped
 *    references — the candidate set is every class that understands
 *    the name+descriptor, not just the declared receiver's subtype
 *    cone.
 *  - RTA (rapid type analysis): dispatch candidates are restricted to
 *    classes actually instantiated on some reachable path. The
 *    instantiated set is seeded from NEW sites in RTA-reachable
 *    methods and grown to a fixpoint. This is sound for the substrate
 *    because NEW is the only instance-allocation source (LDC strings
 *    intern as int arrays, not instances) and natives cannot call
 *    back into bytecode.
 *
 * Downstream consumers: the RTA-pruned static first-use estimator
 * (first_use.h), hot/cold/dead method classification (reach.h), and
 * the non-strict-safety auditor (audit.h).
 */

#ifndef NSE_ANALYSIS_CALLGRAPH_H
#define NSE_ANALYSIS_CALLGRAPH_H

#include <cstdint>
#include <set>
#include <vector>

#include "program/program.h"

namespace nse
{

/** One INVOKE instruction inside a method body. */
struct CallSite
{
    /** Decode-order instruction index within the method. */
    uint32_t instIndex = 0;
    /** Constant-pool index of the MethodRef operand. */
    uint16_t cpIdx = 0;
    bool isVirtual = false;
    /** Single-target resolution from the static receiver class —
     *  exactly what cfg.h's per-block `calls` records. */
    MethodId staticTarget;
    /** CHA candidates: every method some program class could dispatch
     *  this site to. staticTarget first, rest ascending by MethodId.
     *  For static calls this is just {staticTarget}. */
    std::vector<MethodId> chaTargets;
    /** RTA candidates: chaTargets restricted to dispatch from
     *  instantiated classes. Subset of chaTargets; may be empty for a
     *  virtual site whose receiver class is never instantiated. */
    std::vector<MethodId> rtaTargets;
};

/** Call-graph node for one method. */
struct MethodNode
{
    bool native = false;
    /** Call sites in instruction order. */
    std::vector<CallSite> sites;
    /** Class indices allocated by NEW instructions in this body
     *  (deduplicated, ascending). */
    std::vector<uint16_t> allocates;
};

/** Whole-program call graph; build with buildCallGraph(). */
class CallGraph
{
  public:
    const MethodNode &
    node(MethodId id) const
    {
        return nodes_[id.classIdx][id.methodIdx];
    }

    /** Classes allocated somewhere RTA-reachable. */
    const std::set<uint16_t> &
    instantiated() const
    {
        return instantiated_;
    }

    bool
    isInstantiated(uint16_t class_idx) const
    {
        return instantiated_.count(class_idx) != 0;
    }

    /** Reachable from the entry following RTA-pruned edges. */
    bool
    rtaReachable(MethodId id) const
    {
        return rta_[id.classIdx][id.methodIdx];
    }

    /** Reachable from the entry following CHA edges. */
    bool
    chaReachable(MethodId id) const
    {
        return cha_[id.classIdx][id.methodIdx];
    }

    size_t rtaReachableCount() const { return rtaCount_; }
    size_t chaReachableCount() const { return chaCount_; }

  private:
    friend CallGraph buildCallGraph(const Program &prog);

    std::vector<std::vector<MethodNode>> nodes_;
    std::set<uint16_t> instantiated_;
    std::vector<std::vector<bool>> rta_;
    std::vector<std::vector<bool>> cha_;
    size_t rtaCount_ = 0;
    size_t chaCount_ = 0;
};

/**
 * Build the call graph: decode every method body, resolve each INVOKE
 * site under static/CHA/RTA dispatch, and run the RTA
 * instantiated-set fixpoint from the program entry.
 */
CallGraph buildCallGraph(const Program &prog);

} // namespace nse

#endif // NSE_ANALYSIS_CALLGRAPH_H
