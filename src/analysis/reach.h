/**
 * @file
 * Entry-rooted method reachability classification over the call graph.
 *
 * Splits the program's methods into three temperatures that drive
 * transfer placement:
 *  - Hot: reachable from the entry along RTA-pruned edges — expected
 *    to execute; ordered by the first-use estimator.
 *  - Cold: reachable under CHA but not under RTA — only reachable
 *    through a virtual dispatch whose receiver class is never
 *    instantiated; demoted to the transfer tail ahead of dead code.
 *  - Dead: not reachable even under CHA — can only transfer last.
 *
 * The split feeds the RTA-aware static first-use estimator
 * (first_use.h): hot methods keep their predicted order, cold then
 * dead methods are appended as the tail.
 */

#ifndef NSE_ANALYSIS_REACH_H
#define NSE_ANALYSIS_REACH_H

#include <vector>

#include "analysis/callgraph.h"
#include "program/program.h"

namespace nse
{

/** Transfer temperature of one method. */
enum class MethodTemp : uint8_t
{
    Hot,  ///< RTA-reachable from the entry
    Cold, ///< CHA-reachable only
    Dead, ///< unreachable even under CHA
};

/** Hot/cold/dead classification of a whole program. */
struct ReachClassification
{
    /** Temperature per [class][method]. */
    std::vector<std::vector<MethodTemp>> temp;
    size_t hotCount = 0;
    size_t coldCount = 0;
    size_t deadCount = 0;

    MethodTemp
    of(MethodId id) const
    {
        return temp[id.classIdx][id.methodIdx];
    }
};

/** Classify every method from the call graph's reachability sets. */
ReachClassification classifyReach(const Program &prog,
                                  const CallGraph &cg);

} // namespace nse

#endif // NSE_ANALYSIS_REACH_H
