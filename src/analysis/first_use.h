/**
 * @file
 * Static first-use estimation (paper §4.1).
 *
 * Predicts the order in which a program's methods will execute for the
 * first time, using only static structure: a modified DFS over the
 * interprocedural control-flow graph that
 *   - prioritises successor paths containing the most static loops
 *     (looping implies reuse, hence overlap opportunity);
 *   - when traversing conditional branches inside a loop, defers
 *     loop-exit edges on a placeholder stack until the blocks inside
 *     the loop have been searched for calls (the paper's (block,
 *     loop-header) pair stack);
 *   - recurses into callees at call sites, so the order methods are
 *     first *encountered* is the predicted first-use order.
 *
 * Methods never reached from the entry are appended afterwards in
 * program order — they are predicted never to execute, so they transfer
 * last (the paper gives unexecuted procedures their placement "using
 * the static approach").
 */

#ifndef NSE_ANALYSIS_FIRST_USE_H
#define NSE_ANALYSIS_FIRST_USE_H

#include <vector>

#include "program/program.h"

namespace nse
{

class CallGraph;
class UseAnalysis;

/** A predicted or measured first-use ordering over methods. */
struct FirstUseOrder
{
    /** Methods in predicted first-invocation order; entry comes first. */
    std::vector<MethodId> order;
    /** How many entries were actually predicted/observed; the rest are
     *  appended placements for never-used methods. */
    size_t usedCount = 0;

    /** Per-class method order induced by the global order. */
    std::vector<std::vector<uint16_t>> perClassOrder(
        const Program &prog) const;

    /** Position of each method in `order` (ranks; lower = earlier). */
    std::vector<std::vector<size_t>> ranks(const Program &prog) const;
};

/** Run the static estimator over the whole program. */
FirstUseOrder staticFirstUse(const Program &prog);

/**
 * RTA-pruned static estimate: the same modified DFS, but virtual call
 * sites follow the call graph's rtaTargets — dispatch candidates whose
 * receiver class is never instantiated do not pull their target
 * forward. Methods the traversal never reaches are demoted to the
 * tail: cold (CHA-reachable only) methods first, then dead ones, each
 * in program order. usedCount covers the traversal-reached (hot)
 * prefix.
 */
FirstUseOrder staticFirstUse(const Program &prog, const CallGraph &cg);

/**
 * The `mustuse` predictor: the RTA-pruned static estimate refined by
 * the use-distance analysis (dataflow.h). Hot methods with a proved
 * guaranteed-use deadline (must-used, finite mustMax) are re-sorted
 * among the slots they already occupy, ascending by that deadline;
 * may-only methods keep their RTA positions, so the DFS encounter
 * heuristic stays authoritative wherever the analysis proves nothing
 * (it "breaks RTA ties by guaranteed-use distance", never overrules
 * RTA with a weaker fact).
 */
FirstUseOrder mustUseFirstUse(const Program &prog, const CallGraph &cg,
                              const UseAnalysis &use);

/**
 * Complete a partial (e.g. profiled) ordering: methods missing from
 * `partial` are appended following the static estimate, then any
 * remaining ones in program order.
 */
FirstUseOrder completeWithStatic(const Program &prog,
                                 std::vector<MethodId> partial);

} // namespace nse

#endif // NSE_ANALYSIS_FIRST_USE_H
