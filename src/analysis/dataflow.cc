/**
 * @file
 * Use-distance analysis: the UseDistanceProblem instantiation of the
 * generic solver, plus the interprocedural RTA fixpoint.
 *
 * Soundness shape (full derivation in DESIGN.md §14):
 *
 *  - The replay clock charges each decoded instruction's cost at
 *    dispatch, before its handler runs, so the first-use hook of a
 *    callee fires at exactly (cycles before the invoke) + (invoke
 *    instruction cost) — for bytecode and native callees alike. Path
 *    sums over the `plain` stream therefore *are* hook clocks.
 *  - mayMin is a shortest-distance fixpoint over the full CFG
 *    (back edges included): any concrete execution walk costs at
 *    least the min-fixpoint distance, loops or not.
 *  - must facts are killed across back edges and their mustMax
 *    bounds saturate to infinity through loops and recursion: a
 *    finite mustMax survives only along loop-free guaranteed
 *    prefixes, which is exactly where a bound is provable (loop trip
 *    counts are statically unbounded).
 *  - The interprocedural fixpoint starts pessimistic (no facts,
 *    maxExec = inf) and is monotone per component — may memberships
 *    grow and min distances only fall; must memberships grow only as
 *    callee maxExec bounds become finite, and every intermediate
 *    max-side value over-approximates the truth — so the fixpoint is
 *    sound and iteration terminates.
 */

#include "analysis/dataflow.h"

#include <sstream>

#include "support/error.h"
#include "vm/decoded.h"
#include "vm/natives.h"

namespace nse
{

namespace
{

/** Summary lookup shared by the per-method problems: the fixpoint's
 *  current (pessimistic-side) view of every method. */
using SummaryMap = std::map<MethodId, MethodUseSummary>;

const MethodUseSummary &
pessimisticSummary()
{
    // No uses, exec interval [0, inf): the sound "know nothing"
    // placeholder for methods not yet solved (or RTA-unreachable
    // dispatch leftovers).
    static const MethodUseSummary kUnknown = [] {
        MethodUseSummary s;
        s.minExec = 0;
        s.maxExec = kDistInf;
        return s;
    }();
    return kUnknown;
}

/**
 * Backward use-distance problem for one method body. State at a
 * program point = facts about everything used from that point to the
 * method's return, plus the exec-cost interval of getting to the
 * return.
 */
struct UseDistanceProblem
{
    struct State
    {
        std::map<MethodId, UseFact> uses;
        uint64_t minExit = 0;
        uint64_t maxExit = 0;

        bool
        operator==(const State &o) const
        {
            return uses == o.uses && minExit == o.minExit &&
                   maxExit == o.maxExit;
        }
    };

    static constexpr DataflowDir dir = DataflowDir::Backward;

    const Program &prog;
    const CallGraph &cg;
    const SummaryMap &summaries;
    const std::vector<DInst> &plain;
    /** Call sites of this method keyed by instruction index. */
    std::map<uint32_t, const CallSite *> siteAt;

    UseDistanceProblem(const Program &p, const CallGraph &g,
                       const SummaryMap &sums, MethodId id,
                       const std::vector<DInst> &plain_stream)
        : prog(p), cg(g), summaries(sums), plain(plain_stream)
    {
        for (const CallSite &s : cg.node(id).sites)
            siteAt.emplace(s.instIndex, &s);
    }

    const MethodUseSummary &
    summaryOf(MethodId id) const
    {
        auto it = summaries.find(id);
        return it == summaries.end() ? pessimisticSummary()
                                     : it->second;
    }

    State
    boundary() const
    {
        return State{}; // at a return: nothing more used, zero cost
    }

    State
    init() const
    {
        // Pre-fixpoint seed read only through back edges before the
        // source block settles: must claim nothing (no facts) and
        // keep the min side at infinity so it cannot leak a
        // too-small distance into an early meet.
        State s;
        s.minExit = kDistInf;
        s.maxExit = kDistInf;
        return s;
    }

    void
    meet(State &into, const State &from) const
    {
        // Path join: may = union/min, must = intersection/max.
        for (auto &[id, f] : from.uses) {
            auto [it, fresh] = into.uses.emplace(id, f);
            if (fresh)
                it->second.must = false; // absent on the other branch
            else {
                UseFact &g = it->second;
                g.mayMin = std::min(g.mayMin, f.mayMin);
                if (g.must && f.must)
                    g.mustMax = std::max(g.mustMax, f.mustMax);
                else
                    g.must = false;
            }
        }
        for (auto &[id, f] : into.uses)
            if (f.must && from.uses.find(id) == from.uses.end())
                f.must = false;
        into.minExit = std::min(into.minExit, from.minExit);
        into.maxExit = std::max(into.maxExit, from.maxExit);
    }

    std::optional<State>
    acrossBackEdge(const State &from) const
    {
        // Loops: the min side flows (shortest-distance fixpoint over
        // the cyclic graph — sound for every walk); the must side is
        // killed and the exit upper bound saturates (trip counts are
        // statically unbounded).
        State s;
        for (auto &[id, f] : from.uses) {
            UseFact g;
            g.mayMin = f.mayMin;
            s.uses.emplace(id, g);
        }
        s.minExit = from.minExit;
        s.maxExit = kDistInf;
        return s;
    }

    /** Fold one call site (invoke cost already handled by caller:
     *  the hook fires `cost` cycles after the pre-call point). */
    void
    applyCall(State &state, const CallSite &site, uint64_t cost) const
    {
        const std::vector<MethodId> &cands = site.rtaTargets;
        if (cands.empty()) {
            // RTA-impossible dispatch: site can never execute a call;
            // treat as a plain instruction.
            shift(state, cost);
            return;
        }
        uint64_t min_exec = kDistInf, max_exec = 0;
        for (MethodId c : cands) {
            const MethodUseSummary &s = summaryOf(c);
            min_exec = std::min(min_exec, s.minExec);
            max_exec = std::max(max_exec, s.maxExec);
        }

        State out; // state at the pre-call point
        out.minExit = distAdd(cost, distAdd(min_exec, state.minExit));
        out.maxExit = distAdd(cost, distAdd(max_exec, state.maxExit));

        // Everything reachable at or through the call, plus the
        // continuation shifted by the call's exec interval.
        auto &uses = out.uses;
        auto mergeMay = [&](MethodId id, uint64_t may_min) {
            auto [it, fresh] = uses.emplace(id, UseFact{});
            if (fresh || may_min < it->second.mayMin)
                it->second.mayMin = may_min;
        };
        for (MethodId c : cands) {
            mergeMay(c, cost); // the callee's own hook
            for (auto &[id, f] : summaryOf(c).uses)
                mergeMay(id, distAdd(cost, f.mayMin));
        }
        for (auto &[id, f] : state.uses)
            mergeMay(id, distAdd(cost, distAdd(min_exec, f.mayMin)));

        // Must side: a target is guaranteed here if every dispatch
        // candidate guarantees it (being the candidate counts), or if
        // the continuation guarantees it and every candidate provably
        // returns. Take the tighter of the two bounds when both hold.
        auto considerMust = [&](MethodId id, uint64_t must_max) {
            auto it = uses.find(id);
            NSE_ASSERT(it != uses.end(),
                       "must fact without matching may fact");
            UseFact &g = it->second;
            if (!g.must || must_max < g.mustMax) {
                g.must = true;
                g.mustMax = std::min(g.mustMax, must_max);
            }
        };
        // ... via the callee(s):
        {
            std::map<MethodId, uint64_t> by_all;
            bool first = true;
            for (MethodId c : cands) {
                const MethodUseSummary &s = summaryOf(c);
                std::map<MethodId, uint64_t> mine;
                mine.emplace(c, 0);
                for (auto &[id, f] : s.uses)
                    if (f.must)
                        mine.emplace(id, f.mustMax);
                if (first) {
                    by_all = std::move(mine);
                    first = false;
                } else {
                    for (auto it = by_all.begin();
                         it != by_all.end();) {
                        auto jt = mine.find(it->first);
                        if (jt == mine.end()) {
                            it = by_all.erase(it);
                        } else {
                            it->second =
                                std::max(it->second, jt->second);
                            ++it;
                        }
                    }
                }
            }
            for (auto &[id, m] : by_all)
                considerMust(id, distAdd(cost, m));
        }
        // ... via the continuation:
        for (auto &[id, f] : state.uses)
            if (f.must)
                considerMust(
                    id, distAdd(cost, distAdd(max_exec, f.mustMax)));

        state = std::move(out);
    }

    void
    shift(State &state, uint64_t cost) const
    {
        state.minExit = distAdd(state.minExit, cost);
        state.maxExit = distAdd(state.maxExit, cost);
        for (auto &[id, f] : state.uses) {
            f.mayMin = distAdd(f.mayMin, cost);
            if (f.must)
                f.mustMax = distAdd(f.mustMax, cost);
        }
    }

    State
    transfer(const Cfg &cfg, uint32_t block, const State &flow_in) const
    {
        State state = flow_in;
        const BasicBlock &b = cfg.blocks[block];
        for (uint32_t i = b.last + 1; i-- > b.first;) {
            uint64_t cost = plain[i].cost;
            auto site = siteAt.find(i);
            if (site != siteAt.end())
                applyCall(state, *site->second, cost);
            else
                shift(state, cost);
        }
        return state;
    }
};

MethodUseSummary
solveMethod(const Program &prog, const CallGraph &cg,
            const SummaryMap &summaries, MethodId id, const Cfg &cfg,
            const DecodedMethod &dm)
{
    NSE_ASSERT(dm.plain.size() == cfg.insts.size(),
               "decoded plain stream out of step with the CFG");
    UseDistanceProblem prob(prog, cg, summaries, id, dm.plain);
    auto solved = solveDataflow(cfg, prob);
    MethodUseSummary s;
    s.uses = std::move(solved.in[0].uses);
    s.minExec = solved.in[0].minExit;
    s.maxExec = solved.in[0].maxExit;
    return s;
}

MethodUseSummary
nativeSummary(const Program &prog, MethodId id,
              const NativeRegistry *natives)
{
    MethodUseSummary s;
    if (!natives) {
        s.minExec = 0;
        s.maxExec = kDistInf;
        return s;
    }
    const ClassFile &cf = prog.classAt(id.classIdx);
    std::string qualified =
        cf.name() + "." + cf.methodName(prog.method(id));
    if (!natives->has(qualified)) {
        s.minExec = 0;
        s.maxExec = kDistInf;
        return s;
    }
    uint64_t cost = natives->lookup(qualified).cycleCost;
    s.minExec = cost;
    s.maxExec = cost;
    return s;
}

} // namespace

const MethodUseSummary &
UseAnalysis::summary(MethodId id) const
{
    auto it = summaries_.find(id);
    return it == summaries_.end() ? pessimisticSummary() : it->second;
}

UseFact
UseAnalysis::globalOf(MethodId id) const
{
    auto it = global_.find(id);
    return it == global_.end() ? UseFact{} : it->second;
}

std::string
UseAnalysis::render(const Program &prog) const
{
    std::ostringstream os;
    auto dist = [](uint64_t d) {
        return d == kDistInf ? std::string("inf") : std::to_string(d);
    };
    for (const auto &[id, f] : global_) {
        const ClassFile &cf = prog.classAt(id.classIdx);
        os << cf.name() << "." << cf.methodName(prog.method(id))
           << ": mayMin=" << dist(f.mayMin)
           << (f.must ? " must<=" + dist(f.mustMax) : " may") << "\n";
    }
    return os.str();
}

UseAnalysis
analyzeUse(const Program &prog, const CallGraph &cg,
           const DecodedCache &decoded, const NativeRegistry *natives)
{
    UseAnalysis ua;

    // RTA-reachable methods only: everything else can never fire a
    // first-use hook in any run, so it needs no summary (and the
    // property `may subset-of RTA-reachable` holds by construction).
    std::vector<MethodId> methods;
    std::map<MethodId, Cfg> cfgs;
    for (uint16_t c = 0; c < prog.classCount(); ++c) {
        uint16_t mcount =
            static_cast<uint16_t>(prog.classAt(c).methods.size());
        for (uint16_t m = 0; m < mcount; ++m) {
            MethodId id{c, m};
            if (!cg.rtaReachable(id))
                continue;
            methods.push_back(id);
            if (cg.node(id).native)
                ua.summaries_.emplace(id,
                                      nativeSummary(prog, id, natives));
            else
                cfgs.emplace(id, buildCfg(prog, id));
        }
    }

    // Interprocedural fixpoint: re-solve every bytecode method until
    // no summary moves. Monotone per component (see file comment), so
    // this terminates; bodies are small and methods few, so the naive
    // round-robin is cheap.
    bool changed = true;
    while (changed) {
        changed = false;
        ++ua.iterations_;
        for (MethodId id : methods) {
            auto cfg_it = cfgs.find(id);
            if (cfg_it == cfgs.end())
                continue; // native: summary is constant
            MethodUseSummary next =
                solveMethod(prog, cg, ua.summaries_, id,
                            cfg_it->second, decoded.get(id));
            auto [it, fresh] =
                ua.summaries_.emplace(id, MethodUseSummary{});
            if (fresh || !(it->second == next)) {
                it->second = std::move(next);
                changed = true;
            }
        }
    }

    // Global view: the entry method's summary, plus the entry itself
    // (its hook fires at clock 0 before any instruction runs).
    MethodId entry = prog.entry();
    ua.global_ = ua.summary(entry).uses;
    UseFact self;
    self.mayMin = 0;
    self.must = true;
    self.mustMax = 0;
    auto [it, fresh] = ua.global_.emplace(entry, self);
    if (!fresh)
        it->second = self;
    return ua;
}

} // namespace nse
