/**
 * @file
 * Non-strict-safety auditor: a static lint over a (program, layout,
 * schedule) triple.
 *
 * Non-strict execution (paper §3) lets a method start once its own
 * delimiter arrives, before the rest of its class file does. That is
 * only safe when everything the method touches *first* — constant-pool
 * entries resolved during verification/linking, its GMD partition
 * chunk, the callees it immediately invokes — has arrived no later
 * than the method itself. The restructurer is supposed to guarantee
 * this by construction; the auditor proves it for a concrete
 * configuration, so a mismatched (ordering, partition, layout)
 * combination is caught as structured diagnostics instead of silent
 * runtime stalls or a VerifyError on the client.
 *
 * Checks, by severity:
 *  - Error: a constant-pool dependency of a method (from the
 *    verifier's decode-level extraction, methodCpDependencies) arrives
 *    at a stream offset after the method's delimiter. This includes
 *    entries assigned to a *later* method's GMD chunk and entries the
 *    partitioner classed as unused — both arise when the partition or
 *    layout was built from a different ordering than the other.
 *  - Error: in an interleaved layout, a cross-class call edge whose
 *    callee the ordering predicts first-used before its caller, yet
 *    whose class's structural prefix is placed after the caller's
 *    delimiter. The single virtual file has no second channel to
 *    demand-fetch a missing class prefix from, so a non-strict start
 *    of the caller would fault at the invoke instead of stalling.
 *  - Warning: a call edge whose callee the ordering predicts to be
 *    first-used before its caller, yet the layout delivers after the
 *    caller (layout contradicts the ordering it supposedly follows).
 *  - Info: a cold or dead method placed before hot methods of the
 *    same stream (wasted early bandwidth, not a safety issue); or,
 *    when a transfer schedule is supplied, a stream whose needed
 *    prefix provably cannot arrive by its first-use deadline even
 *    uncontended (a definite miss, but on the paper's links an
 *    expected, demand-fetch-absorbed startup cost rather than a
 *    configuration defect).
 *
 * A configuration is non-strict safe iff the report has no errors.
 */

#ifndef NSE_ANALYSIS_AUDIT_H
#define NSE_ANALYSIS_AUDIT_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/callgraph.h"
#include "analysis/first_use.h"
#include "program/program.h"
#include "restructure/data_partition.h"
#include "restructure/layout.h"
#include "transfer/link.h"
#include "transfer/schedule.h"

namespace nse
{

enum class AuditSeverity : uint8_t
{
    Info,
    Warning,
    Error,
};

/** What kind of dependency a diagnostic is about. */
enum class AuditDepKind : uint8_t
{
    CpStructural,   ///< entry in the class's structural prefix
    CpOwnedEntry,   ///< entry owned by another method's GMD chunk
    CpUnusedEntry,  ///< entry the partitioner classed as unused
    Callee,         ///< predicted-earlier callee
    CrossClass,     ///< callee class's prefix after the caller
    SchedulePrefix, ///< stream prefix vs first-use deadline
    Placement,      ///< cold/dead method ahead of hot ones
    ProvableStall,  ///< guaranteed use unsatisfiable at nominal rate
};

/** One finding. Offsets are stream-local byte positions. */
struct AuditDiagnostic
{
    AuditSeverity severity = AuditSeverity::Info;
    AuditDepKind kind = AuditDepKind::CpStructural;
    /** The dependent method (the one that would stall or fault). */
    MethodId method;
    std::string methodLabel;
    /** Constant-pool index of the late entry; -1 when not cp-related. */
    int cpIdx = -1;
    /** Offset/cycle by which the dependency is needed. */
    uint64_t needOffset = 0;
    /** Offset/cycle at which the dependency actually arrives. */
    uint64_t arriveOffset = 0;
    std::string detail;
    std::string fixHint;
};

/** Audit result: diagnostics plus severity tallies. */
struct AuditReport
{
    std::vector<AuditDiagnostic> diags;
    size_t errorCount = 0;
    size_t warningCount = 0;
    size_t infoCount = 0;

    /** Non-strict safe: nothing arrives after its dependent. */
    bool ok() const { return errorCount == 0; }

    /** Human-readable rendering, one line per diagnostic. */
    std::string render() const;

    /** Machine-readable document (schema "nse-audit-v1"). */
    std::string toJson() const;
};

/** Optional schedule-level inputs for the prefix-deadline check. */
struct ScheduleAuditInput
{
    const TransferSchedule &schedule;
    const StreamDemand &demand;
    const LinkModel &link;
};

/**
 * Audit one configuration. `order` must be the ordering the layout
 * was built from; `part` is the partition baked into the layout (null
 * when unpartitioned); `sched` enables the schedule check.
 */
AuditReport auditNonStrictSafety(const Program &prog, const CallGraph &cg,
                                 const FirstUseOrder &order,
                                 const TransferLayout &layout,
                                 const DataPartition *part,
                                 const ScheduleAuditInput *sched = nullptr);

} // namespace nse

#endif // NSE_ANALYSIS_AUDIT_H
