#include "analysis/first_use.h"

#include <algorithm>
#include <set>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/reach.h"
#include "support/error.h"

namespace nse
{

namespace
{

/** Interprocedural modified-DFS driver. Callee resolution goes
 *  through the call graph: the legacy static estimate follows each
 *  site's single staticTarget; the RTA-pruned estimate follows
 *  rtaTargets (statically-resolved target first, so the orders agree
 *  wherever pruning removes nothing). */
class StaticEstimator
{
  public:
    StaticEstimator(const Program &prog, const CallGraph &cg,
                    bool use_rta)
        : prog_(prog), cg_(cg), useRta_(use_rta)
    {
    }

    std::vector<MethodId>
    run()
    {
        visitMethod(prog_.entry());
        return std::move(order_);
    }

  private:
    void
    visitMethod(MethodId id)
    {
        if (!visited_.insert(id).second)
            return;
        order_.push_back(id);
        if (prog_.method(id).isNative())
            return;
        traverse(buildCfg(prog_, id));
    }

    void
    visitCallsIn(const Cfg &cfg, const BasicBlock &blk)
    {
        // The order calls are first encountered is the predicted
        // first-use order: descend into callees immediately, in
        // instruction order.
        for (const CallSite &site : cg_.node(cfg.method).sites) {
            if (site.instIndex < blk.first || site.instIndex > blk.last)
                continue;
            if (!useRta_) {
                visitMethod(site.staticTarget);
                continue;
            }
            for (const MethodId &target : site.rtaTargets)
                visitMethod(target);
        }
    }

    void
    traverse(const Cfg &cfg)
    {
        // Explicit DFS stack plus the paper's placeholder stack of
        // (loop-exit block, loop header) pairs: an exit is deferred
        // until control returns to its loop's header via the back
        // edge — i.e. until the blocks inside the loop have been
        // searched for calls.
        std::vector<uint32_t> stack{0};
        std::vector<std::pair<uint32_t, uint32_t>> deferred;
        std::vector<bool> seen(cfg.blocks.size(), false);

        auto release = [&](uint32_t header) {
            // Move exits of this loop onto the DFS stack.
            for (size_t i = deferred.size(); i-- > 0;) {
                if (deferred[i].second == header) {
                    stack.push_back(deferred[i].first);
                    deferred.erase(deferred.begin() +
                                   static_cast<long>(i));
                }
            }
        };

        while (!stack.empty() || !deferred.empty()) {
            uint32_t blk;
            if (!stack.empty()) {
                blk = stack.back();
                stack.pop_back();
            } else {
                blk = deferred.back().first;
                deferred.pop_back();
            }
            if (seen[blk])
                continue;
            seen[blk] = true;

            visitCallsIn(cfg, cfg.blocks[blk]);

            // Partition successors: a back edge completes its loop and
            // releases the loop's deferred exits; loop-exit edges are
            // deferred with their header; forward edges are prioritised
            // by the number of static loops below them.
            std::vector<uint32_t> forward;
            for (uint32_t succ : cfg.blocks[blk].succs) {
                if (cfg.isBackEdge(blk, succ)) {
                    release(succ);
                    continue;
                }
                if (seen[succ])
                    continue;
                if (cfg.loopDepth[succ] < cfg.loopDepth[blk]) {
                    deferred.emplace_back(succ, cfg.innerHeader[blk]);
                } else {
                    forward.push_back(succ);
                }
            }
            // Push lowest-priority first so the loop-richest path pops
            // first (the paper's forward-branch heuristic).
            std::stable_sort(forward.begin(), forward.end(),
                             [&](uint32_t a, uint32_t b) {
                                 return cfg.loopsBelow[a] <
                                        cfg.loopsBelow[b];
                             });
            for (uint32_t succ : forward)
                stack.push_back(succ);
        }
    }

    const Program &prog_;
    const CallGraph &cg_;
    bool useRta_;
    std::set<MethodId> visited_;
    std::vector<MethodId> order_;
};

} // namespace

std::vector<std::vector<uint16_t>>
FirstUseOrder::perClassOrder(const Program &prog) const
{
    std::vector<std::vector<uint16_t>> per_class(prog.classCount());
    for (const MethodId &id : order)
        per_class[id.classIdx].push_back(id.methodIdx);
    return per_class;
}

std::vector<std::vector<size_t>>
FirstUseOrder::ranks(const Program &prog) const
{
    std::vector<std::vector<size_t>> rank(prog.classCount());
    for (uint16_t c = 0; c < prog.classCount(); ++c)
        rank[c].assign(prog.classAt(c).methods.size(), SIZE_MAX);
    for (size_t i = 0; i < order.size(); ++i)
        rank[order[i].classIdx][order[i].methodIdx] = i;
    return rank;
}

FirstUseOrder
staticFirstUse(const Program &prog)
{
    CallGraph cg = buildCallGraph(prog);
    StaticEstimator estimator(prog, cg, /*use_rta=*/false);
    FirstUseOrder out;
    out.order = estimator.run();
    out.usedCount = out.order.size();

    // Methods unreachable from the entry transfer last, program order.
    std::set<MethodId> placed(out.order.begin(), out.order.end());
    prog.forEachMethod([&](MethodId id, const ClassFile &,
                           const MethodInfo &) {
        if (!placed.count(id))
            out.order.push_back(id);
    });
    return out;
}

FirstUseOrder
staticFirstUse(const Program &prog, const CallGraph &cg)
{
    StaticEstimator estimator(prog, cg, /*use_rta=*/true);
    FirstUseOrder out;
    out.order = estimator.run();
    out.usedCount = out.order.size();

    // Demote unvisited methods by temperature: cold (CHA-only
    // reachable) ahead of dead (unreachable even under CHA), each
    // group in program order.
    ReachClassification reach = classifyReach(prog, cg);
    std::set<MethodId> placed(out.order.begin(), out.order.end());
    for (MethodTemp want :
         {MethodTemp::Hot, MethodTemp::Cold, MethodTemp::Dead}) {
        prog.forEachMethod([&](MethodId id, const ClassFile &,
                               const MethodInfo &) {
            if (reach.of(id) == want && !placed.count(id))
                out.order.push_back(id);
        });
    }
    NSE_ASSERT(out.order.size() == prog.methodCount(),
               "RTA first-use order does not cover the program");
    return out;
}

FirstUseOrder
mustUseFirstUse(const Program &prog, const CallGraph &cg,
                const UseAnalysis &use)
{
    FirstUseOrder out = staticFirstUse(prog, cg);
    // Collect the hot-prefix slots holding a method with a proved
    // guaranteed-use deadline and re-sort just those methods among
    // just those slots. The permutation is deliberately minimal:
    // everything the analysis cannot bound keeps its RTA position.
    std::vector<size_t> slots;
    std::vector<MethodId> proved;
    for (size_t i = 0; i < out.usedCount; ++i) {
        UseFact f = use.globalOf(out.order[i]);
        if (f.must && f.mustMax != kDistInf) {
            slots.push_back(i);
            proved.push_back(out.order[i]);
        }
    }
    std::stable_sort(proved.begin(), proved.end(),
                     [&](const MethodId &a, const MethodId &b) {
                         return use.globalOf(a).mustMax <
                                use.globalOf(b).mustMax;
                     });
    for (size_t k = 0; k < slots.size(); ++k)
        out.order[slots[k]] = proved[k];
    return out;
}

FirstUseOrder
completeWithStatic(const Program &prog, std::vector<MethodId> partial)
{
    FirstUseOrder out;
    out.order = std::move(partial);
    out.usedCount = out.order.size();
    std::set<MethodId> placed(out.order.begin(), out.order.end());
    FirstUseOrder fallback = staticFirstUse(prog);
    for (const MethodId &id : fallback.order) {
        if (!placed.count(id)) {
            out.order.push_back(id);
            placed.insert(id);
        }
    }
    NSE_ASSERT(out.order.size() == prog.methodCount(),
               "first-use order does not cover the program");
    return out;
}

} // namespace nse
