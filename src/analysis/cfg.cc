#include "analysis/cfg.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "support/error.h"
#include "vm/verifier.h"

namespace nse
{

namespace
{

/** Mark DFS back edges (edge into a node on the current DFS stack). */
void
findBackEdges(Cfg &cfg)
{
    enum class Color : uint8_t { White, Grey, Black };
    std::vector<Color> color(cfg.blocks.size(), Color::White);
    // Iterative DFS: stack of (block, next-successor-index).
    std::vector<std::pair<uint32_t, size_t>> stack;
    stack.emplace_back(0, 0);
    color[0] = Color::Grey;
    while (!stack.empty()) {
        auto &[blk, next] = stack.back();
        if (next < cfg.blocks[blk].succs.size()) {
            uint32_t succ = cfg.blocks[blk].succs[next++];
            if (color[succ] == Color::White) {
                color[succ] = Color::Grey;
                stack.emplace_back(succ, 0);
            } else if (color[succ] == Color::Grey) {
                cfg.backEdges.emplace_back(blk, succ);
            }
        } else {
            color[blk] = Color::Black;
            stack.pop_back();
        }
    }
}

/** Natural-loop membership for each back edge -> loop depths. */
void
computeLoopDepths(Cfg &cfg)
{
    cfg.loopDepth.assign(cfg.blocks.size(), 0);
    cfg.innerHeader.assign(cfg.blocks.size(), UINT32_MAX);
    std::vector<size_t> inner_size(cfg.blocks.size(), SIZE_MAX);
    for (auto &[tail, header] : cfg.backEdges) {
        // Loop body: header plus blocks that reach tail without
        // passing through header (reverse reachability from tail).
        std::set<uint32_t> body{header, tail};
        std::vector<uint32_t> work{tail};
        while (!work.empty()) {
            uint32_t blk = work.back();
            work.pop_back();
            if (blk == header)
                continue;
            for (uint32_t pred : cfg.blocks[blk].preds) {
                if (body.insert(pred).second)
                    work.push_back(pred);
            }
        }
        for (uint32_t blk : body) {
            ++cfg.loopDepth[blk];
            // The smallest containing loop is the innermost one.
            if (body.size() < inner_size[blk]) {
                inner_size[blk] = body.size();
                cfg.innerHeader[blk] = header;
            }
        }
    }
}

/** loopsBelow[b] = back edges reachable following forward edges. */
void
computeLoopsBelow(Cfg &cfg)
{
    size_t n = cfg.blocks.size();
    cfg.loopsBelow.assign(n, 0);
    for (uint32_t start = 0; start < n; ++start) {
        std::vector<bool> seen(n, false);
        std::vector<uint32_t> work{start};
        seen[start] = true;
        uint32_t count = 0;
        while (!work.empty()) {
            uint32_t blk = work.back();
            work.pop_back();
            for (uint32_t succ : cfg.blocks[blk].succs) {
                if (cfg.isBackEdge(blk, succ))
                    ++count;
                if (!seen[succ]) {
                    seen[succ] = true;
                    work.push_back(succ);
                }
            }
        }
        cfg.loopsBelow[start] = count;
    }
}

} // namespace

Cfg
buildCfg(const Program &prog, MethodId id)
{
    const MethodInfo &m = prog.method(id);
    NSE_CHECK(!m.isNative(), "cannot build a CFG for native method ",
              prog.methodLabel(id));

    Cfg cfg;
    cfg.method = id;
    Verifier verifier(prog);
    VerifiedMethod vm = verifier.verifyMethod(id);
    cfg.insts = std::move(vm.insts);
    size_t n = cfg.insts.size();

    // Leaders: entry, branch targets, instruction after a branch/return.
    std::vector<bool> leader(n, false);
    leader[0] = true;
    for (size_t i = 0; i < n; ++i) {
        const Instruction &inst = cfg.insts[i];
        if (isBranch(inst.op)) {
            size_t t = vm.indexOf(static_cast<uint32_t>(inst.operand));
            leader[t] = true;
            if (i + 1 < n)
                leader[i + 1] = true;
        } else if (isReturn(inst.op)) {
            if (i + 1 < n)
                leader[i + 1] = true;
        }
    }

    // Carve blocks.
    cfg.blockOfInst.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
        if (leader[i]) {
            BasicBlock blk;
            blk.first = static_cast<uint32_t>(i);
            cfg.blocks.push_back(blk);
        }
        uint32_t bidx = static_cast<uint32_t>(cfg.blocks.size() - 1);
        cfg.blockOfInst[i] = bidx;
        cfg.blocks[bidx].last = static_cast<uint32_t>(i);
        cfg.blocks[bidx].byteSize +=
            static_cast<uint32_t>(cfg.insts[i].size());
    }

    // Edges and call sites.
    for (auto &blk : cfg.blocks) {
        const Instruction &term = cfg.insts[blk.last];
        auto link = [&](size_t target_inst) {
            uint32_t to = cfg.blockOfInst[target_inst];
            blk.succs.push_back(to);
        };
        if (isBranch(term.op)) {
            link(vm.indexOf(static_cast<uint32_t>(term.operand)));
            if (isConditionalBranch(term.op) && blk.last + 1 < n)
                link(blk.last + 1);
        } else if (!isReturn(term.op) && blk.last + 1 < n) {
            link(blk.last + 1);
        }

        const ClassFile &cf = prog.classAt(id.classIdx);
        for (uint32_t i = blk.first; i <= blk.last; ++i) {
            const Instruction &inst = cfg.insts[i];
            if (!isInvoke(inst.op))
                continue;
            auto ref = cf.cpool.memberRef(
                static_cast<uint16_t>(inst.operand));
            bool is_virtual = inst.op == Opcode::INVOKEVIRTUAL;
            MethodId target =
                is_virtual ? prog.resolveVirtual(ref.className, ref.name,
                                                 ref.descriptor)
                           : prog.resolveStatic(ref.className, ref.name,
                                                ref.descriptor);
            blk.calls.emplace_back(target, is_virtual);
        }
    }
    for (uint32_t b = 0; b < cfg.blocks.size(); ++b)
        for (uint32_t succ : cfg.blocks[b].succs)
            cfg.blocks[succ].preds.push_back(b);

    findBackEdges(cfg);
    computeLoopDepths(cfg);
    computeLoopsBelow(cfg);
    return cfg;
}

std::string
dumpCfg(const Cfg &cfg)
{
    std::ostringstream os;
    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        const BasicBlock &blk = cfg.blocks[b];
        os << "B" << b << " [" << blk.first << ".." << blk.last
           << "] depth=" << cfg.loopDepth[b]
           << " loopsBelow=" << cfg.loopsBelow[b] << " ->";
        for (uint32_t s : blk.succs)
            os << " B" << s << (cfg.isBackEdge(static_cast<uint32_t>(b), s)
                                    ? "(back)"
                                    : "");
        os << "\n";
    }
    return os.str();
}

} // namespace nse
