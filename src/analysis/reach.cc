#include "analysis/reach.h"

namespace nse
{

ReachClassification
classifyReach(const Program &prog, const CallGraph &cg)
{
    ReachClassification out;
    out.temp.resize(prog.classCount());
    prog.forEachMethod([&](MethodId id, const ClassFile &,
                           const MethodInfo &) {
        auto &row = out.temp[id.classIdx];
        if (row.empty())
            row.resize(prog.classAt(id.classIdx).methods.size());
        MethodTemp t;
        if (cg.rtaReachable(id)) {
            t = MethodTemp::Hot;
            ++out.hotCount;
        } else if (cg.chaReachable(id)) {
            t = MethodTemp::Cold;
            ++out.coldCount;
        } else {
            t = MethodTemp::Dead;
            ++out.deadCount;
        }
        row[id.methodIdx] = t;
    });
    return out;
}

} // namespace nse
