#include "analysis/audit.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "analysis/reach.h"
#include "report/json.h"
#include "support/error.h"
#include "vm/verifier.h"

namespace nse
{

namespace
{

const char *
severityName(AuditSeverity s)
{
    switch (s) {
    case AuditSeverity::Info: return "info";
    case AuditSeverity::Warning: return "warning";
    case AuditSeverity::Error: return "error";
    }
    panic("bad severity");
}

const char *
kindName(AuditDepKind k)
{
    switch (k) {
    case AuditDepKind::CpStructural: return "cp-structural";
    case AuditDepKind::CpOwnedEntry: return "cp-owned-entry";
    case AuditDepKind::CpUnusedEntry: return "cp-unused-entry";
    case AuditDepKind::Callee: return "callee-order";
    case AuditDepKind::CrossClass: return "cross-class";
    case AuditDepKind::SchedulePrefix: return "schedule-prefix";
    case AuditDepKind::Placement: return "placement";
    case AuditDepKind::ProvableStall: return "provable-stall";
    }
    panic("bad dep kind");
}

/** Where a cp dependency of class c arrives in the stream. */
struct DepArrival
{
    uint64_t offset;
    AuditDepKind kind;
    int owner; // partition owner, or -1 when unpartitioned
};

DepArrival
cpArrival(const TransferLayout &layout, const DataPartition *part,
          uint16_t c, uint16_t idx)
{
    if (!part)
        return {layout.classPrefixEnd[c], AuditDepKind::CpStructural, -1};
    int owner = part->classes[c].assignment[idx].owner;
    if (owner == -1)
        return {layout.classPrefixEnd[c], AuditDepKind::CpStructural, -1};
    if (owner == -2)
        return {layout.unusedEnd[c], AuditDepKind::CpUnusedEntry, -2};
    return {layout.gmdEnd[c][static_cast<size_t>(owner)],
            AuditDepKind::CpOwnedEntry, owner};
}

void
checkCpDependencies(const Program &prog, const TransferLayout &layout,
                    const DataPartition *part, AuditReport &report)
{
    prog.forEachMethod([&](MethodId id, const ClassFile &cf,
                           const MethodInfo &m) {
        uint64_t avail = layout.of(id).availOffset;
        for (uint16_t idx : methodCpDependencies(cf, m)) {
            DepArrival at = cpArrival(layout, part, id.classIdx, idx);
            if (at.offset <= avail)
                continue;
            AuditDiagnostic d;
            d.severity = AuditSeverity::Error;
            d.kind = at.kind;
            d.method = id;
            d.methodLabel = prog.methodLabel(id);
            d.cpIdx = idx;
            d.needOffset = avail;
            d.arriveOffset = at.offset;
            switch (at.kind) {
            case AuditDepKind::CpStructural:
                d.detail = "constant-pool entry in the class prefix "
                           "arrives after the method's delimiter";
                d.fixHint = "emit the class's global prefix before any "
                            "of its transfer units";
                break;
            case AuditDepKind::CpUnusedEntry:
                d.detail = "constant-pool entry the partition classed "
                           "as unused is live in this method";
                d.fixHint = "rebuild the partition from the same "
                            "ordering the layout uses so the entry "
                            "joins a needed chunk";
                break;
            default:
                d.detail = cat("constant-pool entry travels in the GMD "
                               "chunk of ",
                               prog.methodLabel(MethodId{
                                   id.classIdx,
                                   static_cast<uint16_t>(at.owner)}),
                               ", which transfers later");
                d.fixHint = "partition and layout must be built from "
                            "the same first-use ordering; the owning "
                            "method must precede its dependents";
                break;
            }
            report.diags.push_back(std::move(d));
        }
    });
}

void
checkCalleeOrder(const Program &prog, const CallGraph &cg,
                 const FirstUseOrder &order, const TransferLayout &layout,
                 AuditReport &report)
{
    auto rank = order.ranks(prog);
    std::set<std::pair<MethodId, MethodId>> reported;
    prog.forEachMethod([&](MethodId id, const ClassFile &,
                           const MethodInfo &m) {
        if (m.isNative() || !cg.rtaReachable(id))
            return;
        const MethodPlacement &caller = layout.of(id);
        for (const CallSite &site : cg.node(id).sites) {
            for (const MethodId &t : site.rtaTargets) {
                if (rank[t.classIdx][t.methodIdx] >=
                    rank[id.classIdx][id.methodIdx])
                    continue; // callee predicted after caller: fine
                const MethodPlacement &callee = layout.of(t);
                if (callee.streamIdx != caller.streamIdx ||
                    callee.availOffset <= caller.availOffset)
                    continue;
                if (!reported.emplace(id, t).second)
                    continue;
                AuditDiagnostic d;
                d.severity = AuditSeverity::Warning;
                d.kind = AuditDepKind::Callee;
                d.method = id;
                d.methodLabel = prog.methodLabel(id);
                d.needOffset = caller.availOffset;
                d.arriveOffset = callee.availOffset;
                d.detail = cat("callee ", prog.methodLabel(t),
                               " is predicted first-used earlier but "
                               "placed later in the stream");
                d.fixHint = "rebuild the layout from the ordering it "
                            "claims to follow";
                report.diags.push_back(std::move(d));
            }
        }
    });
}

void
checkCrossClassDeps(const Program &prog, const CallGraph &cg,
                    const FirstUseOrder &order,
                    const TransferLayout &layout, AuditReport &report)
{
    // Only meaningful for the interleaved virtual file: parallel
    // layouts carry every class on its own stream, so a late class
    // prefix there surfaces as a runtime demand fetch (a stall, cost
    // already modeled). With one wire stream there is no second
    // channel to pull a missing prefix from out of order — a
    // non-strict start of the caller would fault at the invoke.
    if (layout.streams.size() != 1 || layout.streams[0].classIdx >= 0)
        return;
    auto rank = order.ranks(prog);
    std::set<std::pair<MethodId, int>> reported;
    prog.forEachMethod([&](MethodId id, const ClassFile &,
                           const MethodInfo &m) {
        if (m.isNative() || !cg.rtaReachable(id))
            return;
        const MethodPlacement &caller = layout.of(id);
        for (const CallSite &site : cg.node(id).sites) {
            for (const MethodId &t : site.rtaTargets) {
                if (t.classIdx == id.classIdx)
                    continue; // own prefix: checkCpDependencies' job
                if (rank[t.classIdx][t.methodIdx] >=
                    rank[id.classIdx][id.methodIdx])
                    continue; // callee predicted after caller: fine
                uint64_t arrive = layout.classPrefixEnd[t.classIdx];
                if (arrive <= caller.availOffset)
                    continue;
                if (!reported.emplace(id, int{t.classIdx}).second)
                    continue;
                AuditDiagnostic d;
                d.severity = AuditSeverity::Error;
                d.kind = AuditDepKind::CrossClass;
                d.method = id;
                d.methodLabel = prog.methodLabel(id);
                d.needOffset = caller.availOffset;
                d.arriveOffset = arrive;
                d.detail = cat("callee ", prog.methodLabel(t),
                               " is predicted first-used earlier but "
                               "its class's structural prefix is "
                               "placed after the caller in the "
                               "interleaved stream");
                d.fixHint = "emit each class's global prefix before "
                            "its first transfer unit in the global "
                            "first-use order the layout claims to "
                            "follow";
                report.diags.push_back(std::move(d));
            }
        }
    });
}

void
checkSchedule(const Program &prog, const TransferLayout &layout,
              const ScheduleAuditInput &in, AuditReport &report)
{
    int entry_class = static_cast<int>(prog.entry().classIdx);
    for (size_t s = 0; s < layout.streams.size(); ++s) {
        const StreamInfo &stream = layout.streams[s];
        // Execution cannot begin before the entry stream's prefix
        // arrives, so its deadline clock starts only then; skip it
        // (and the single interleaved stream, which contains it).
        if (stream.classIdx == entry_class || stream.classIdx < 0)
            continue;
        uint64_t deadline = in.demand.deadline[s];
        if (deadline == UINT64_MAX)
            continue; // predicted never used: no deadline
        uint64_t lower_bound =
            in.schedule.startCycle[s] +
            transferCost(in.demand.prefixBytes[s], in.link);
        if (lower_bound <= deadline)
            continue;
        AuditDiagnostic d;
        // Info, not Warning: on the paper's links most deadlines are
        // provably unmeetable (transfer-bound regime) and the runtime
        // absorbs the miss with a demand fetch; the finding flags
        // startup-latency cost, not a broken configuration.
        d.severity = AuditSeverity::Info;
        d.kind = AuditDepKind::SchedulePrefix;
        d.methodLabel = stream.name;
        d.needOffset = deadline;
        d.arriveOffset = lower_bound;
        d.detail = cat("stream ", stream.name, " needs ",
                       in.demand.prefixBytes[s],
                       " prefix bytes by its first-use deadline but "
                       "cannot receive them even uncontended on ",
                       in.link.name);
        d.fixHint = "start the stream earlier or shrink its needed "
                    "prefix (reorder / partition)";
        report.diags.push_back(std::move(d));
    }
}

void
checkPlacement(const Program &prog, const CallGraph &cg,
               const TransferLayout &layout, AuditReport &report)
{
    ReachClassification reach = classifyReach(prog, cg);
    struct Placed
    {
        uint64_t offset;
        MethodId id;
        MethodTemp temp;
    };
    std::map<int, std::vector<Placed>> per_stream;
    prog.forEachMethod([&](MethodId id, const ClassFile &,
                           const MethodInfo &) {
        const MethodPlacement &p = layout.of(id);
        per_stream[p.streamIdx].push_back(
            {p.availOffset, id, reach.of(id)});
    });
    for (auto &[stream, methods] : per_stream) {
        std::stable_sort(methods.begin(), methods.end(),
                         [](const Placed &a, const Placed &b) {
                             return a.offset < b.offset;
                         });
        uint64_t last_hot = 0;
        bool any_hot = false;
        for (const Placed &p : methods) {
            if (p.temp == MethodTemp::Hot) {
                last_hot = p.offset;
                any_hot = true;
            }
        }
        if (!any_hot)
            continue;
        for (const Placed &p : methods) {
            if (p.temp == MethodTemp::Hot || p.offset >= last_hot)
                continue;
            AuditDiagnostic d;
            d.severity = AuditSeverity::Info;
            d.kind = AuditDepKind::Placement;
            d.method = p.id;
            d.methodLabel = prog.methodLabel(p.id);
            d.needOffset = last_hot;
            d.arriveOffset = p.offset;
            d.detail = cat(p.temp == MethodTemp::Cold ? "cold" : "dead",
                           " method transfers before hot methods of "
                           "its stream");
            d.fixHint = "demote unreachable methods to the stream tail";
            report.diags.push_back(std::move(d));
        }
    }
}

} // namespace

std::string
AuditReport::render() const
{
    std::ostringstream os;
    for (const AuditDiagnostic &d : diags) {
        os << severityName(d.severity) << ": " << kindName(d.kind)
           << ": " << d.methodLabel;
        if (d.cpIdx >= 0)
            os << " cp#" << d.cpIdx;
        os << ": " << d.detail << " (needed by " << d.needOffset
           << ", arrives " << d.arriveOffset << "); fix: " << d.fixHint
           << "\n";
    }
    os << errorCount << " error(s), " << warningCount
       << " warning(s), " << infoCount << " info(s)\n";
    return os.str();
}

std::string
AuditReport::toJson() const
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"nse-audit-v1\",\n"
       << "  \"errors\": " << errorCount
       << ",\n  \"warnings\": " << warningCount
       << ",\n  \"infos\": " << infoCount
       << ",\n  \"diagnostics\": [";
    for (size_t i = 0; i < diags.size(); ++i) {
        const AuditDiagnostic &d = diags[i];
        os << (i ? "," : "") << "\n    {\"severity\": "
           << jsonQuote(severityName(d.severity))
           << ", \"kind\": " << jsonQuote(kindName(d.kind))
           << ", \"method\": " << jsonQuote(d.methodLabel)
           << ", \"cpIdx\": " << d.cpIdx
           << ", \"needOffset\": " << d.needOffset
           << ", \"arriveOffset\": " << d.arriveOffset
           << ", \"detail\": " << jsonQuote(d.detail)
           << ", \"fixHint\": " << jsonQuote(d.fixHint) << "}";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

AuditReport
auditNonStrictSafety(const Program &prog, const CallGraph &cg,
                     const FirstUseOrder &order,
                     const TransferLayout &layout,
                     const DataPartition *part,
                     const ScheduleAuditInput *sched)
{
    AuditReport report;
    checkCpDependencies(prog, layout, part, report);
    checkCalleeOrder(prog, cg, order, layout, report);
    checkCrossClassDeps(prog, cg, order, layout, report);
    if (sched)
        checkSchedule(prog, layout, *sched, report);
    checkPlacement(prog, cg, layout, report);

    // Deterministic presentation: errors first, then warnings, infos;
    // stable within a severity (check order, then discovery order).
    std::stable_sort(report.diags.begin(), report.diags.end(),
                     [](const AuditDiagnostic &a,
                        const AuditDiagnostic &b) {
                         return static_cast<int>(a.severity) >
                                static_cast<int>(b.severity);
                     });
    for (const AuditDiagnostic &d : report.diags) {
        switch (d.severity) {
        case AuditSeverity::Error: ++report.errorCount; break;
        case AuditSeverity::Warning: ++report.warningCount; break;
        case AuditSeverity::Info: ++report.infoCount; break;
        }
    }
    return report;
}

} // namespace nse
