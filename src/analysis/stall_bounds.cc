/**
 * @file
 * Static stall prover implementation. See stall_bounds.h for the
 * bound statements and DESIGN.md §14 for the full derivation.
 */

#include "analysis/stall_bounds.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.h"

namespace nse
{

namespace
{

/**
 * Cycles that *must* have elapsed before `bytes` can have arrived on
 * a stream transferring alone at the full nominal rate, minus a
 * one-cycle margin for the engine's byte epsilon. A lower bound on
 * any waitFor() resume for that offset, measured from stream start.
 */
uint64_t
earliestTransfer(uint64_t bytes, const LinkModel &link)
{
    double cycles = static_cast<double>(bytes) * link.cyclesPerByte;
    if (cycles <= 1.0)
        return 0;
    return static_cast<uint64_t>(cycles) - 1;
}

/**
 * Cycles by which `bytes` have certainly arrived when the stream's
 * equal share never drops below 1/`active_cap` of the link, plus a
 * one-cycle epsilon margin.
 */
uint64_t
latestTransfer(uint64_t bytes, const LinkModel &link, int active_cap)
{
    double cycles = static_cast<double>(bytes) * link.cyclesPerByte *
                    static_cast<double>(active_cap);
    if (cycles >= 9e18)
        return kDistInf;
    return static_cast<uint64_t>(std::ceil(cycles)) + 1;
}

} // namespace

StallBoundReport
computeStallBounds(const StallBoundInput &in)
{
    const TransferLayout &layout = in.layout;
    size_t n_streams = layout.streams.size();

    // Earliest possible activation per stream: the greedy start, or
    // the earliest exec clock at which any of the stream's may-used
    // methods could demand-fetch it — whichever is smaller. Demand
    // starts are the only mechanism that moves a start *earlier* (a
    // replay without runahead never reprioritizes), and a demand
    // fetch of method m fires at wall clock >= exec clock >=
    // mayMin(m).
    std::vector<uint64_t> earliest_start(n_streams, kDistInf);
    for (size_t s = 0; s < n_streams; ++s)
        if (s < in.schedule.startCycle.size())
            earliest_start[s] = in.schedule.startCycle[s];
    for (const auto &[id, fact] : in.use.global()) {
        const MethodPlacement &pl = layout.of(id);
        if (pl.streamIdx < 0)
            continue;
        auto s = static_cast<size_t>(pl.streamIdx);
        earliest_start[s] = std::min(earliest_start[s], fact.mayMin);
    }

    // Latest-arrival machinery. The drain bound holds regardless of
    // queueing: every start has fired by the latest scheduled start
    // (demand fetches only move starts earlier), and the engine is
    // work-conserving from then on, so the whole layout has drained
    // after one full-layout transfer time. The tighter per-stream
    // equal-share bound additionally needs "no start can ever queue",
    // i.e. the concurrency limit cannot bind.
    uint64_t max_sched_start = 0;
    for (size_t s = 0; s < n_streams; ++s)
        if (s < in.schedule.startCycle.size())
            max_sched_start =
                std::max(max_sched_start, in.schedule.startCycle[s]);
    uint64_t drain_arrival = distAdd(
        max_sched_start,
        latestTransfer(layout.totalBytes, in.link, /*active_cap=*/1));
    bool no_queueing = in.parallelLimit <= 0 ||
                       n_streams <= static_cast<size_t>(in.parallelLimit);
    int active_cap =
        in.parallelLimit <= 0
            ? static_cast<int>(n_streams)
            : std::min(in.parallelLimit, static_cast<int>(n_streams));
    if (active_cap < 1)
        active_cap = 1;

    StallBoundReport report;
    for (const auto &[id, fact] : in.use.global()) {
        const MethodPlacement &pl = layout.of(id);
        if (pl.streamIdx < 0)
            continue;
        auto s = static_cast<size_t>(pl.streamIdx);

        MethodStallBound b;
        b.method = id;
        b.label = in.prog.methodLabel(id);
        b.mustUsed = fact.must;
        b.mayMin = fact.mayMin;
        b.mustMax = fact.must ? fact.mustMax : kDistInf;

        // Earliest arrival: stream start plus full-rate transfer of
        // the needed prefix. An empty prefix is "arrived" the moment
        // the use asks, wherever the stream is.
        if (pl.availOffset == 0)
            b.earliestArrival = 0;
        else
            b.earliestArrival =
                distAdd(earliest_start[s],
                        earliestTransfer(pl.availOffset, in.link));

        // Latest arrival: drain bound, or the equal-share bound when
        // no queueing is possible.
        b.latestArrival = drain_arrival;
        if (no_queueing && s < in.schedule.startCycle.size()) {
            uint64_t per_stream = distAdd(
                in.schedule.startCycle[s],
                latestTransfer(pl.availOffset, in.link, active_cap));
            b.latestArrival = std::min(b.latestArrival, per_stream);
        }

        if (b.mustUsed && b.mustMax != kDistInf &&
            b.earliestArrival != kDistInf &&
            b.earliestArrival > b.mustMax)
            b.lowerStall = b.earliestArrival - b.mustMax;
        if (b.mayMin != kDistInf && b.latestArrival > b.mayMin)
            b.upperStall = b.latestArrival - b.mayMin;

        report.runLowerBound =
            std::max(report.runLowerBound, b.lowerStall);
        report.runUpperBound =
            distAdd(report.runUpperBound, b.upperStall);
        if (b.lowerStall > 0)
            ++report.provableStalls;
        report.methods.push_back(std::move(b));
    }
    return report;
}

std::string
StallBoundReport::render() const
{
    std::ostringstream os;
    auto dist = [](uint64_t d) {
        return d == kDistInf ? std::string("inf") : std::to_string(d);
    };
    for (const MethodStallBound &b : methods) {
        if (b.lowerStall == 0 && b.upperStall == 0)
            continue;
        os << "  " << b.label << ": "
           << (b.mustUsed ? "must" : "may")
           << " use in [" << dist(b.mayMin) << ", " << dist(b.mustMax)
           << "], arrival in [" << dist(b.earliestArrival) << ", "
           << dist(b.latestArrival) << "] -> stall in ["
           << b.lowerStall << ", " << b.upperStall << "]\n";
    }
    os << "run stall bounds: [" << runLowerBound << ", "
       << dist(runUpperBound) << "], " << provableStalls
       << " provable stall(s)\n";
    return os.str();
}

void
appendStallDiagnostics(const StallBoundReport &report,
                       AuditReport &audit)
{
    for (const MethodStallBound &b : report.methods) {
        if (b.lowerStall == 0)
            continue;
        AuditDiagnostic d;
        d.severity = AuditSeverity::Warning;
        d.kind = AuditDepKind::ProvableStall;
        d.method = b.method;
        d.methodLabel = b.label;
        d.needOffset = b.mustMax;
        d.arriveOffset = b.earliestArrival;
        d.detail = cat("guaranteed use by cycle ", b.mustMax,
                       " cannot be satisfied before cycle ",
                       b.earliestArrival, " at nominal bandwidth (>=",
                       b.lowerStall, " stall cycles)");
        d.fixHint = "move the method earlier in its stream, start the "
                    "stream sooner, or accept the demand-fetch wait";
        audit.diags.push_back(std::move(d));
        ++audit.warningCount;
    }
}

} // namespace nse
