/**
 * @file
 * Basic-block control-flow graphs over verified method bodies.
 *
 * The static first-use estimator (paper §4.1) walks a per-method CFG
 * with interprocedural call edges. Blocks are maximal straight-line
 * instruction runs; edges carry whether they are back edges (loops),
 * which the estimator's heuristics prioritise.
 */

#ifndef NSE_ANALYSIS_CFG_H
#define NSE_ANALYSIS_CFG_H

#include <cstdint>
#include <string>
#include <vector>

#include "bytecode/instruction.h"
#include "program/program.h"

namespace nse
{

/** One basic block: instruction index range [first, last]. */
struct BasicBlock
{
    uint32_t first = 0; ///< index of the first instruction
    uint32_t last = 0;  ///< index of the last instruction (inclusive)
    std::vector<uint32_t> succs;
    std::vector<uint32_t> preds;
    /** Call targets of INVOKE* instructions inside this block, along
     *  with whether the call is virtual (resolved conservatively). */
    std::vector<std::pair<MethodId, bool>> calls;
    /** Total encoded bytes of the block's instructions. */
    uint32_t byteSize = 0;
};

/** CFG of one method. Block 0 is the entry. */
struct Cfg
{
    MethodId method;
    std::vector<Instruction> insts;
    std::vector<BasicBlock> blocks;
    /** instruction index -> owning block. */
    std::vector<uint32_t> blockOfInst;
    /** Edges (from-block, to-block) that are loop back edges. */
    std::vector<std::pair<uint32_t, uint32_t>> backEdges;
    /** Per-block loop-nesting depth (0 = not in a loop). */
    std::vector<uint32_t> loopDepth;
    /** Header block of the innermost loop containing each block;
     *  UINT32_MAX when the block is in no loop. */
    std::vector<uint32_t> innerHeader;
    /** Number of static loops (back edges) reachable from each block,
     *  including loops in transitively called methods' entry counts
     *  when computed by the estimator. */
    std::vector<uint32_t> loopsBelow;

    bool
    isBackEdge(uint32_t from, uint32_t to) const
    {
        for (auto &[f, t] : backEdges)
            if (f == from && t == to)
                return true;
        return false;
    }
};

/**
 * Build the CFG of one (non-native) method. Virtual call targets are
 * resolved from the static receiver class (the estimator's
 * approximation — the profile-guided path measures the truth).
 */
Cfg buildCfg(const Program &prog, MethodId id);

/** Render a CFG for diagnostics. */
std::string dumpCfg(const Cfg &cfg);

} // namespace nse

#endif // NSE_ANALYSIS_CFG_H
