/**
 * @file
 * Reusable dataflow framework over the decoded-IR CFG, plus the
 * use-distance analysis the static stall prover is built on.
 *
 * Two layers:
 *
 *  1. A generic intraprocedural solver (`solveDataflow`): forward or
 *     backward, problem-defined meet and transfer, worklist iteration
 *     in (reverse) post order. Problems see back edges explicitly and
 *     choose what flows across them, so a single engine serves both
 *     cyclic fixpoints (shortest-distance style) and acyclic
 *     must-style approximations that deliberately kill facts across
 *     loops.
 *
 *  2. `UseAnalysis`: per-method summaries of which callees each
 *     method *may* use (on some path) and *must* use (on every
 *     terminating path), with execution-cycle distances accumulated
 *     from the baked `DInst` per-opcode costs, composed
 *     interprocedurally over the RTA call graph to a fixpoint. The
 *     distances speak the replay clock's language exactly: a first-use
 *     hook for callee `t` fires at `execClock(use)`, and the analysis
 *     guarantees
 *
 *         gMayMin(t)  <=  execClock(use of t)          (any run)
 *         execClock(first use of t) <= gMustMax(t)     (must-used t,
 *                                                       finite bound)
 *
 *     which is what turns a byte-arrival schedule into provable stall
 *     bounds (stall_bounds.h). See DESIGN.md §14 for the lattices and
 *     the soundness argument.
 */

#ifndef NSE_ANALYSIS_DATAFLOW_H
#define NSE_ANALYSIS_DATAFLOW_H

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/callgraph.h"
#include "analysis/cfg.h"
#include "program/program.h"
#include "support/saturate.h"

namespace nse
{

class NativeRegistry;
class DecodedCache;

/** Which way facts flow through the CFG. */
enum class DataflowDir : uint8_t
{
    Forward,  ///< facts flow entry -> exit (join over predecessors)
    Backward, ///< facts flow exit -> entry (join over successors)
};

/**
 * Solved per-block states. For a Forward problem `in[b]` is the state
 * before the block and `out[b]` after it; for a Backward problem
 * `in[b]` is the state *at block entry* (the fact the block's first
 * instruction sees looking toward the exit) and `out[b]` the state at
 * block exit — i.e. `in = transfer(out)` in both namings.
 */
template <typename State>
struct DataflowResult
{
    std::vector<State> in;
    std::vector<State> out;
    /** Worklist passes until the fixpoint (diagnostics/tests). */
    size_t iterations = 0;
};

/**
 * Generic worklist solver. The Problem type supplies:
 *
 *   using State = ...;                 // value with operator==
 *   static constexpr DataflowDir dir;
 *   State boundary() const;            // entry (Forward) / exit
 *                                      // (Backward) boundary value
 *   State init() const;                // pre-meet seed for every
 *                                      // other block
 *   void meet(State &into, const State &from) const;
 *   std::optional<State> acrossBackEdge(const State &from) const;
 *                                      // value carried by a back
 *                                      // edge; nullopt drops the edge
 *   State transfer(const Cfg &cfg, uint32_t block,
 *                  const State &flow_in) const;
 *
 * Blocks are iterated in reverse post order (Forward) or post order
 * (Backward) so acyclic graphs settle in one pass; edges the problem
 * maps across `acrossBackEdge` re-enqueue their targets until the
 * fixpoint. Termination is the problem's contract: meet/transfer must
 * be monotone on a chain-finite lattice.
 */
template <typename Problem>
DataflowResult<typename Problem::State>
solveDataflow(const Cfg &cfg, const Problem &prob)
{
    using State = typename Problem::State;
    constexpr bool forward = Problem::dir == DataflowDir::Forward;
    size_t n = cfg.blocks.size();
    DataflowResult<State> r;
    r.in.assign(n, prob.init());
    r.out.assign(n, prob.init());

    // Post order of the forward CFG via iterative DFS from the entry.
    std::vector<uint32_t> post;
    post.reserve(n);
    {
        std::vector<uint8_t> seen(n, 0);
        std::vector<std::pair<uint32_t, size_t>> stack;
        stack.emplace_back(0, 0);
        seen[0] = 1;
        while (!stack.empty()) {
            auto &[b, next] = stack.back();
            if (next < cfg.blocks[b].succs.size()) {
                uint32_t s = cfg.blocks[b].succs[next++];
                if (!seen[s]) {
                    seen[s] = 1;
                    stack.emplace_back(s, 0);
                }
            } else {
                post.push_back(b);
                stack.pop_back();
            }
        }
    }
    // Iteration order: reverse post order for Forward, post order for
    // Backward (which is reverse post order of the reversed graph for
    // the loop-free core).
    std::vector<uint32_t> order(post);
    if (forward)
        std::reverse(order.begin(), order.end());

    std::vector<uint8_t> dirty(n, 1);
    bool changed = true;
    while (changed) {
        changed = false;
        ++r.iterations;
        for (uint32_t b : order) {
            if (!dirty[b])
                continue;
            dirty[b] = 0;
            const std::vector<uint32_t> &edges =
                forward ? cfg.blocks[b].preds : cfg.blocks[b].succs;
            std::optional<State> acc;
            for (uint32_t e : edges) {
                // Edge direction in the *forward* graph, for back-edge
                // classification.
                uint32_t from = forward ? e : b;
                uint32_t to = forward ? b : e;
                const State &neighbor = forward ? r.out[e] : r.in[e];
                std::optional<State> v =
                    cfg.isBackEdge(from, to)
                        ? prob.acrossBackEdge(neighbor)
                        : std::optional<State>(neighbor);
                if (!v)
                    continue;
                if (!acc)
                    acc = std::move(*v);
                else
                    prob.meet(*acc, *v);
            }
            State flow_in = acc ? std::move(*acc) : prob.boundary();
            State flow_out = prob.transfer(cfg, b, flow_in);
            State &slot_in = forward ? r.in[b] : r.out[b];
            State &slot_out = forward ? r.out[b] : r.in[b];
            bool moved =
                !(slot_in == flow_in) || !(slot_out == flow_out);
            slot_in = std::move(flow_in);
            slot_out = std::move(flow_out);
            if (moved) {
                changed = true;
                const std::vector<uint32_t> &next =
                    forward ? cfg.blocks[b].succs : cfg.blocks[b].preds;
                for (uint32_t s : next)
                    dirty[s] = 1;
            }
        }
    }
    return r;
}

/** Distance sentinel: unreachable / unbounded. */
constexpr uint64_t kDistInf = UINT64_MAX;

/** Saturating add over the distance domain. */
inline uint64_t
distAdd(uint64_t a, uint64_t b)
{
    if (a == kDistInf || b == kDistInf)
        return kDistInf;
    return satAdd(a, b);
}

/**
 * What one method (or the whole program, in the global view) knows
 * about its eventual use of a target method. Distances are execution
 * cycles from the owning scope's entry, in the decoded `DInst` cost
 * model — the same units the replay clock ticks in.
 */
struct UseFact
{
    /** Minimum execution cycles before the target's first-use hook
     *  can possibly fire (exact shortest path, loops included). */
    uint64_t mayMin = kDistInf;
    /** Guaranteed on every terminating path from the scope entry? */
    bool must = false;
    /** Upper bound on the first-use hook's cycle when `must`;
     *  kDistInf when the bound runs through a loop or recursion. */
    uint64_t mustMax = kDistInf;

    bool
    operator==(const UseFact &o) const
    {
        return mayMin == o.mayMin && must == o.must &&
               mustMax == o.mustMax;
    }
};

/** Per-method interprocedural summary. */
struct MethodUseSummary
{
    /** Facts about every target this method can reach, keyed by
     *  callee; distances relative to this method's entry. */
    std::map<MethodId, UseFact> uses;
    /** Execution-cost interval of running the method to its return:
     *  minExec is an exact lower bound; maxExec saturates to kDistInf
     *  when any path loops or recurses. */
    uint64_t minExec = 0;
    uint64_t maxExec = 0;

    bool
    operator==(const MethodUseSummary &o) const
    {
        return uses == o.uses && minExec == o.minExec &&
               maxExec == o.maxExec;
    }
};

/**
 * Must-use / may-use distance analysis: intraprocedural solve per
 * method through `solveDataflow`, composed over the RTA call graph to
 * a fixpoint. Build once per (program, call graph) via
 * `analyzeUse()`; all accessors are const.
 */
class UseAnalysis
{
  public:
    /** Summary of one RTA-reachable bytecode or native method.
     *  Querying an unreachable method returns an empty summary. */
    const MethodUseSummary &summary(MethodId id) const;

    /**
     * The global view from the program entry: a fact per RTA-reachable
     * method, distances in execution cycles from program start. The
     * entry method itself is must-used at distance 0. Methods outside
     * the map are RTA-unreachable (never used, no transfer urgency).
     */
    const std::map<MethodId, UseFact> &global() const { return global_; }

    /** Global fact for one method; empty/never fact if unreachable. */
    UseFact globalOf(MethodId id) const;

    /** Interprocedural fixpoint passes (diagnostics/tests). */
    size_t iterations() const { return iterations_; }

    /** Human-readable dump of the global view (debugging). */
    std::string render(const Program &prog) const;

  private:
    friend UseAnalysis analyzeUse(const Program &prog,
                                  const CallGraph &cg,
                                  const DecodedCache &decoded,
                                  const NativeRegistry *natives);

    std::map<MethodId, MethodUseSummary> summaries_;
    std::map<MethodId, UseFact> global_;
    size_t iterations_ = 0;
};

/**
 * Run the analysis. `decoded` supplies the per-instruction cycle
 * costs (its `plain` stream is 1:1 with the verified instructions the
 * CFG is built over). `natives` prices native callees; pass nullptr
 * to treat native execution cost as the fully conservative [0, inf)
 * interval (sound, but kills must-facts scheduled after native
 * calls).
 */
UseAnalysis analyzeUse(const Program &prog, const CallGraph &cg,
                       const DecodedCache &decoded,
                       const NativeRegistry *natives = nullptr);

} // namespace nse

#endif // NSE_ANALYSIS_DATAFLOW_H
