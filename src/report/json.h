/**
 * @file
 * Machine-readable experiment output: every bench binary emits a
 * BENCH_<name>.json next to (i.e. in addition to) its text tables, so
 * regression tooling and plotting scripts consume structure instead
 * of scraping aligned columns.
 *
 * The shape is uniform across all benches:
 *
 *   {
 *     "bench": "<name>",
 *     "tables": [
 *       {"label": "...", "headers": [...], "rows": [[...], ...]},
 *       ...
 *     ]
 *   }
 */

#ifndef NSE_REPORT_JSON_H
#define NSE_REPORT_JSON_H

#include <string>
#include <vector>

#include "report/table.h"

namespace nse
{

/** JSON string literal with standard escapes. */
std::string jsonQuote(const std::string &s);

/** Collects a bench binary's tables and serializes/writes them. */
class BenchJson
{
  public:
    explicit BenchJson(std::string bench_name);

    /** Record one rendered table under a label ("" for the only one). */
    void addTable(const std::string &label, const Table &table);

    /** Serialize to the canonical JSON document. */
    std::string str() const;

    /**
     * Write BENCH_<name>.json. The directory comes from the
     * NSE_BENCH_JSON_DIR environment variable, defaulting to the
     * current working directory; NSE_BENCH_JSON_DIR=off suppresses
     * the file entirely. Returns the path written ("" if suppressed
     * or on I/O failure — emitting JSON must never fail a bench).
     */
    std::string write() const;

  private:
    struct Entry
    {
        std::string label;
        std::vector<std::string> headers;
        std::vector<std::vector<std::string>> rows;
    };

    std::string name_;
    std::vector<Entry> tables_;
};

} // namespace nse

#endif // NSE_REPORT_JSON_H
