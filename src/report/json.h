/**
 * @file
 * Machine-readable experiment output: every bench binary emits a
 * BENCH_<name>.json next to (i.e. in addition to) its text tables, so
 * regression tooling and plotting scripts consume structure instead
 * of scraping aligned columns.
 *
 * The shape is uniform across all benches:
 *
 *   {
 *     "bench": "<name>",
 *     "metrics": {"runs": 12, "stallCycles": 34, ...},
 *     "tables": [
 *       {"label": "...", "headers": [...], "rows": [[...], ...]},
 *       ...
 *     ]
 *   }
 *
 * "metrics" carries the run counters of the observability layer
 * (obs/metrics.h): stall totals, retry counts, degraded cycles, event
 * counts. It is always present (empty when a bench sets none) so
 * consumers can rely on the shape.
 */

#ifndef NSE_REPORT_JSON_H
#define NSE_REPORT_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "report/table.h"

namespace nse
{

/** JSON string literal with standard escapes. */
std::string jsonQuote(const std::string &s);

/** Collects a bench binary's tables and serializes/writes them. */
class BenchJson
{
  public:
    explicit BenchJson(std::string bench_name);

    /** Record one rendered table under a label ("" for the only one). */
    void addTable(const std::string &label, const Table &table);

    /** Set one "metrics" counter (last set wins; insertion order is
     *  preserved in the document). */
    void setMetric(const std::string &key, uint64_t value);
    void setMetric(const std::string &key, double value);

    /** Serialize to the canonical JSON document. */
    std::string str() const;

    /**
     * Write BENCH_<name>.json. The directory comes from the
     * NSE_BENCH_JSON_DIR environment variable, defaulting to the
     * current working directory; NSE_BENCH_JSON_DIR=off suppresses
     * the file entirely. Returns the path written ("" if suppressed
     * or on I/O failure — emitting JSON never fails a bench, but a
     * failure prints a one-line warning to stderr so CI smoke checks
     * that assert on the file are not left guessing).
     */
    std::string write() const;

  private:
    struct Entry
    {
        std::string label;
        std::vector<std::string> headers;
        std::vector<std::vector<std::string>> rows;
    };

    void setMetricRaw(const std::string &key, std::string rendered);

    std::string name_;
    std::vector<Entry> tables_;
    /** (key, rendered JSON value), in insertion order. */
    std::vector<std::pair<std::string, std::string>> metrics_;
};

} // namespace nse

#endif // NSE_REPORT_JSON_H
