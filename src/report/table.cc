#include "report/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/error.h"

namespace nse
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    NSE_CHECK(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    NSE_CHECK(cells.size() == headers_.size(),
              "row width ", cells.size(), " != header width ",
              headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_)
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << "  ";
            if (i == 0)
                os << std::left;
            else
                os << std::right;
            os << std::setw(static_cast<int>(widths[i])) << row[i];
        }
        os << "\n";
    };
    emit(headers_);
    size_t total = headers_.size() - 1;
    for (size_t w : widths)
        total += w + 1;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

namespace
{

/** RFC 4180 field quoting: quote when the cell holds a comma, quote,
 *  or line break; double embedded quotes. */
std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n\r") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
Table::renderCsv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ",";
            os << csvEscape(row[i]);
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
fmtF(double v, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << v;
    return os.str();
}

std::string
fmtMillions(uint64_t cycles, int decimals)
{
    return fmtF(static_cast<double>(cycles) / 1e6, decimals);
}

std::string
fmtPct(double v, int decimals)
{
    return fmtF(v, decimals);
}

std::string
fmtKb(uint64_t bytes, int decimals)
{
    return fmtF(static_cast<double>(bytes) / 1024.0, decimals);
}

} // namespace nse
