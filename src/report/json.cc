#include "report/json.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace nse
{

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
    return out;
}

BenchJson::BenchJson(std::string bench_name) : name_(std::move(bench_name))
{}

void
BenchJson::addTable(const std::string &label, const Table &table)
{
    tables_.push_back({label, table.headers(), table.rows()});
}

void
BenchJson::setMetricRaw(const std::string &key, std::string rendered)
{
    for (auto &[k, v] : metrics_) {
        if (k == key) {
            v = std::move(rendered);
            return;
        }
    }
    metrics_.emplace_back(key, std::move(rendered));
}

void
BenchJson::setMetric(const std::string &key, uint64_t value)
{
    setMetricRaw(key, std::to_string(value));
}

void
BenchJson::setMetric(const std::string &key, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    setMetricRaw(key, buf);
}

std::string
BenchJson::str() const
{
    std::ostringstream os;
    auto emitStrings = [&](const std::vector<std::string> &v) {
        os << "[";
        for (size_t i = 0; i < v.size(); ++i)
            os << (i ? "," : "") << jsonQuote(v[i]);
        os << "]";
    };

    os << "{\n  \"bench\": " << jsonQuote(name_)
       << ",\n  \"metrics\": {";
    for (size_t m = 0; m < metrics_.size(); ++m) {
        os << (m ? ", " : "") << jsonQuote(metrics_[m].first) << ": "
           << metrics_[m].second;
    }
    os << "},\n  \"tables\": [";
    for (size_t t = 0; t < tables_.size(); ++t) {
        const Entry &e = tables_[t];
        os << (t ? ",\n    {" : "\n    {");
        os << "\"label\": " << jsonQuote(e.label) << ", \"headers\": ";
        emitStrings(e.headers);
        os << ", \"rows\": [";
        for (size_t r = 0; r < e.rows.size(); ++r) {
            os << (r ? ",\n      " : "\n      ");
            emitStrings(e.rows[r]);
        }
        os << (e.rows.empty() ? "]}" : "\n    ]}");
    }
    os << (tables_.empty() ? "]\n}\n" : "\n  ]\n}\n");
    return os.str();
}

std::string
BenchJson::write() const
{
    const char *dir = std::getenv("NSE_BENCH_JSON_DIR");
    std::string d = dir ? dir : ".";
    if (d == "off")
        return "";
    std::string path = d + "/BENCH_" + name_ + ".json";
    std::ofstream os(path, std::ios::trunc);
    if (!os) {
        std::fprintf(stderr,
                     "warning: cannot open bench JSON output %s\n",
                     path.c_str());
        return "";
    }
    os << str();
    os.flush();
    if (!os) {
        std::fprintf(stderr,
                     "warning: short write to bench JSON output %s\n",
                     path.c_str());
        return "";
    }
    return path;
}

} // namespace nse
