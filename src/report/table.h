/**
 * @file
 * Fixed-width table rendering shared by the benchmark binaries, so
 * every reproduced table prints in the same aligned, diffable format.
 */

#ifndef NSE_REPORT_TABLE_H
#define NSE_REPORT_TABLE_H

#include <string>
#include <vector>

namespace nse
{

/** A simple right-aligned text table with a left-aligned first column. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns and a header rule. */
    std::string render() const;

    /**
     * Render as CSV (for plotting / regression diffs). Cells
     * containing commas, double quotes, or newlines are quoted, with
     * embedded quotes doubled (RFC 4180).
     */
    std::string renderCsv() const;

    size_t rowCount() const { return rows_.size(); }
    const std::vector<std::string> &headers() const { return headers_; }
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format helpers used by the bench binaries. */
std::string fmtF(double v, int decimals = 1);
std::string fmtMillions(uint64_t cycles, int decimals = 0);
std::string fmtPct(double v, int decimals = 0);
std::string fmtKb(uint64_t bytes, int decimals = 0);

} // namespace nse

#endif // NSE_REPORT_TABLE_H
