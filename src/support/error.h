/**
 * @file
 * Error-reporting primitives for the non-strict execution library.
 *
 * Following the gem5 convention we distinguish two failure classes:
 *  - fatal():  the condition is the *user's* fault (malformed class file,
 *              bad configuration, invalid workload input). Throws
 *              FatalError, which callers may catch and report.
 *  - panic():  the condition indicates an internal bug that should never
 *              happen regardless of input. Throws PanicError.
 */

#ifndef NSE_SUPPORT_ERROR_H
#define NSE_SUPPORT_ERROR_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace nse
{

/** Raised for user-caused, recoverable failures (bad input or config). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Raised for internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

namespace detail
{

inline void
catInto(std::ostringstream &)
{}

template <typename T, typename... Rest>
void
catInto(std::ostringstream &os, const T &head, const Rest &...rest)
{
    os << head;
    catInto(os, rest...);
}

} // namespace detail

/** Concatenate arbitrary streamable arguments into one std::string. */
template <typename... Args>
std::string
cat(const Args &...args)
{
    std::ostringstream os;
    detail::catInto(os, args...);
    return os.str();
}

/** Report a user error: throws FatalError with the concatenated message. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(cat(args...));
}

/** Report an internal bug: throws PanicError with the message. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(cat(args...));
}

} // namespace nse

/** Check a user-input condition; raise FatalError when it fails. */
#define NSE_CHECK(cond, ...)                                            \
    do {                                                                \
        if (!(cond))                                                    \
            ::nse::fatal("check failed: " #cond ": ", __VA_ARGS__);    \
    } while (0)

/** Check an internal invariant; raise PanicError when it fails. */
#define NSE_ASSERT(cond, ...)                                           \
    do {                                                                \
        if (!(cond))                                                    \
            ::nse::panic("assertion failed: " #cond ": ",              \
                         __VA_ARGS__);                                  \
    } while (0)

#endif // NSE_SUPPORT_ERROR_H
