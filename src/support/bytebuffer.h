/**
 * @file
 * Bounds-checked binary readers and writers used by the class-file
 * serializer/parser and the instruction codec.
 *
 * All multi-byte quantities are big-endian, matching the JVM class-file
 * convention the substrate mirrors.
 */

#ifndef NSE_SUPPORT_BYTEBUFFER_H
#define NSE_SUPPORT_BYTEBUFFER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nse
{

/** Append-only big-endian binary writer backed by a byte vector. */
class ByteWriter
{
  public:
    ByteWriter() = default;

    void putU8(uint8_t v) { bytes_.push_back(v); }

    void
    putU16(uint16_t v)
    {
        putU8(static_cast<uint8_t>(v >> 8));
        putU8(static_cast<uint8_t>(v));
    }

    void
    putU32(uint32_t v)
    {
        putU16(static_cast<uint16_t>(v >> 16));
        putU16(static_cast<uint16_t>(v));
    }

    void
    putU64(uint64_t v)
    {
        putU32(static_cast<uint32_t>(v >> 32));
        putU32(static_cast<uint32_t>(v));
    }

    void putI8(int8_t v) { putU8(static_cast<uint8_t>(v)); }
    void putI16(int16_t v) { putU16(static_cast<uint16_t>(v)); }
    void putI32(int32_t v) { putU32(static_cast<uint32_t>(v)); }
    void putI64(int64_t v) { putU64(static_cast<uint64_t>(v)); }

    /** Append raw bytes verbatim. */
    void putBytes(const uint8_t *data, size_t n);
    void putBytes(const std::vector<uint8_t> &data);

    /** Append a length-prefixed (u16) UTF-8 string. */
    void putString(std::string_view s);

    /** Overwrite a previously written u16 at an absolute offset. */
    void patchU16(size_t offset, uint16_t v);
    /** Overwrite a previously written u32 at an absolute offset. */
    void patchU32(size_t offset, uint32_t v);

    size_t size() const { return bytes_.size(); }
    const std::vector<uint8_t> &bytes() const { return bytes_; }
    std::vector<uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
};

/** Bounds-checked big-endian binary reader over a borrowed byte span. */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {}

    explicit ByteReader(const std::vector<uint8_t> &data)
        : ByteReader(data.data(), data.size())
    {}

    uint8_t getU8();
    uint16_t getU16();
    uint32_t getU32();
    uint64_t getU64();

    int8_t getI8() { return static_cast<int8_t>(getU8()); }
    int16_t getI16() { return static_cast<int16_t>(getU16()); }
    int32_t getI32() { return static_cast<int32_t>(getU32()); }
    int64_t getI64() { return static_cast<int64_t>(getU64()); }

    /** Read a u16 length-prefixed UTF-8 string. */
    std::string getString();

    /** Read exactly n raw bytes. */
    std::vector<uint8_t> getBytes(size_t n);

    /** Skip n bytes; fatal() when fewer remain. */
    void skip(size_t n);

    size_t pos() const { return pos_; }
    size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }

  private:
    void require(size_t n) const;

    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
};

} // namespace nse

#endif // NSE_SUPPORT_BYTEBUFFER_H
