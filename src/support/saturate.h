/**
 * @file
 * Saturating unsigned arithmetic for cycle/byte bookkeeping.
 *
 * Cycle counts in this codebase use UINT64_MAX as "never" (no event,
 * no deadline, unreachable). Arithmetic near that sentinel must clamp
 * rather than wrap: a wrapped commitment or arrival reads as "due
 * almost immediately" and poisons every downstream decision (the
 * greedy placer's commitments, the server loop's event candidates,
 * arrival-plan accumulation). These helpers are the one shared home
 * for that clamping; do not re-derive them locally.
 */

#ifndef NSE_SUPPORT_SATURATE_H
#define NSE_SUPPORT_SATURATE_H

#include <cstdint>

namespace nse
{

/** a + b, clamped to UINT64_MAX on overflow. */
inline uint64_t
satAdd(uint64_t a, uint64_t b)
{
    return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

/** a * b, clamped to UINT64_MAX on overflow. */
inline uint64_t
satMul(uint64_t a, uint64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    if (a > UINT64_MAX / b)
        return UINT64_MAX;
    return a * b;
}

/**
 * Truncate a non-negative double to uint64_t, clamping to UINT64_MAX
 * when the value is at or beyond 2^64 (where the raw cast is
 * undefined behavior). NaN and negative inputs clamp to 0.
 */
inline uint64_t
satFromDouble(double x)
{
    if (!(x > 0.0))
        return 0;
    // 2^64 is exactly representable; anything >= it must clamp.
    if (x >= 18446744073709551616.0)
        return UINT64_MAX;
    return static_cast<uint64_t>(x);
}

} // namespace nse

#endif // NSE_SUPPORT_SATURATE_H
