#include "support/bytebuffer.h"

#include "support/error.h"

namespace nse
{

void
ByteWriter::putBytes(const uint8_t *data, size_t n)
{
    bytes_.insert(bytes_.end(), data, data + n);
}

void
ByteWriter::putBytes(const std::vector<uint8_t> &data)
{
    putBytes(data.data(), data.size());
}

void
ByteWriter::putString(std::string_view s)
{
    NSE_CHECK(s.size() <= UINT16_MAX, "string too long: ", s.size());
    putU16(static_cast<uint16_t>(s.size()));
    putBytes(reinterpret_cast<const uint8_t *>(s.data()), s.size());
}

void
ByteWriter::patchU16(size_t offset, uint16_t v)
{
    NSE_ASSERT(offset + 2 <= bytes_.size(), "patch out of range");
    bytes_[offset] = static_cast<uint8_t>(v >> 8);
    bytes_[offset + 1] = static_cast<uint8_t>(v);
}

void
ByteWriter::patchU32(size_t offset, uint32_t v)
{
    NSE_ASSERT(offset + 4 <= bytes_.size(), "patch out of range");
    patchU16(offset, static_cast<uint16_t>(v >> 16));
    patchU16(offset + 2, static_cast<uint16_t>(v));
}

void
ByteReader::require(size_t n) const
{
    if (remaining() < n) {
        fatal("truncated input: need ", n, " bytes at offset ", pos_,
              " but only ", remaining(), " remain");
    }
}

uint8_t
ByteReader::getU8()
{
    require(1);
    return data_[pos_++];
}

uint16_t
ByteReader::getU16()
{
    require(2);
    uint16_t v = (static_cast<uint16_t>(data_[pos_]) << 8) |
                 static_cast<uint16_t>(data_[pos_ + 1]);
    pos_ += 2;
    return v;
}

uint32_t
ByteReader::getU32()
{
    uint32_t hi = getU16();
    uint32_t lo = getU16();
    return (hi << 16) | lo;
}

uint64_t
ByteReader::getU64()
{
    uint64_t hi = getU32();
    uint64_t lo = getU32();
    return (hi << 32) | lo;
}

std::string
ByteReader::getString()
{
    uint16_t len = getU16();
    require(len);
    std::string s(reinterpret_cast<const char *>(data_ + pos_), len);
    pos_ += len;
    return s;
}

std::vector<uint8_t>
ByteReader::getBytes(size_t n)
{
    require(n);
    std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
}

void
ByteReader::skip(size_t n)
{
    require(n);
    pos_ += n;
}

} // namespace nse
